#!/usr/bin/env python3
"""Perf gate over the BENCH_*.json artifacts produced by run_benches.sh
and tools/hdsky_loadgen. Three modes, auto-detected from the input:

substrate mode (BENCH_substrate.json)
  Compares the vectorized execution paths against the row-at-a-time
  baselines pinned by the *Naive benches in micro_substrate and fails
  (exit 1) when the engine has regressed:

  * BM_ExecuteBroadQuery must not be more than --broad-tolerance slower
    than BM_ExecuteBroadQueryNaive (the early-exit rank-order scan is
    fastest exactly on broad queries, so this is the bound the engine
    could most plausibly lose; both paths early-exit after ~k rows, so
    they measure near-identical and a strict <= would flake on runner
    noise), and
  * BM_ExecuteSelectiveQuery must beat BM_ExecuteSelectiveQueryNaive by
    at least --min-selective-speedup (default 3x, the repo's acceptance
    floor for the columnar engine).

  The out-of-core tier adds two physical-layout gates at the largest
  size, applied to each BM_Ooc*Cold pair that is present (an artifact
  without the Comp/Pread variants skips them):

  * the Comp variant (format-v2 compressed file) must read at least
    --min-compress-bytes-ratio fewer stored bytes per cold query than
    its raw twin (bytes_read_per_iter counters; exactness of both is
    already gated by the differential battery), and
  * the Pread variant (pread + asynchronous readahead) must keep its
    cold median within --pread-tolerance of the mmap twin's.

service mode (BENCH_service.json — any entry carrying a dedup_ratio
counter, as written by hdsky_loadgen --json and micro_service_load)
  Gates the event-driven multi-tenant service under load:

  * every run must have completed (no error_occurred, no failed
    sessions),
  * the cross-session single-flight dedup ratio must stay >=
    --min-dedup on every shared-cache run (names matching
    --dedup-exempt, default "NoCache", are exempt), and
  * when --baseline points at a pinned BENCH_service.json, each run's
    p99 latency must stay within --p99-tolerance of the baseline run of
    the same family (the benchmark name up to the first '/', so a
    smoke-scaled "loadgen/sessions:100/..." still gates against the
    pinned "loadgen/sessions:1000/..." envelope).

federation mode (BENCH_federation.json — any entry carrying a
prune_ratio counter, as written by micro_federation and
hdsky_discover --federation-json)
  Gates federated discovery over K backends:

  * every run must have completed, and partial coverage (a backend
    failed or exhausted its budget) fails unless --allow-partial,
  * the cross-backend prune must answer at least --min-prune-ratio of
    the would-be queries from the shared dominance snapshot (the prune
    is structurally rare — witnesses must be extreme on every ranking
    attribute the query tree has not bounded yet, see
    docs/federation.md — so the floor is a fraction of a percent that
    still proves the machinery fires; names matching --prune-exempt,
    default "join", are exempt because join mode disables pruning),
  * runs that also report sequential_queries (micro_federation does)
    must pay strictly fewer federated queries than the K sequential
    discoveries they replace, and
  * runs that report skyline_match must report exactly 1.0 — the
    federated union skyline equals the merged-dataset ground truth, and
  * runs that report resumed_duplicate_queries (BM_FederatedResume, the
    stop-at-a-barrier-and-resume durability path) must report exactly 0:
    a resumed session replays none of the queries its first life already
    paid for. Their skyline_match is gated on the same 1.0 floor.

Only the Python standard library is used. Median aggregates are
preferred when the JSON carries repetitions; raw iterations are used
otherwise.
"""

import argparse
import json
import re
import sys


def load_json(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        # 64 = EX_USAGE: the artifact is unreadable or not JSON — a CI
        # wiring problem, reported as such instead of a traceback.
        print(f"error: {path}: {e}", file=sys.stderr)
        sys.exit(64)


def select_runs(data):
    """The representative benchmark entries: median aggregates when
    present, raw (non-aggregate) iterations otherwise."""
    benches = data.get("benchmarks", [])
    medians = [b for b in benches if b.get("aggregate_name") == "median"]
    if medians:
        return medians
    return [b for b in benches if b.get("run_type") != "aggregate"]


def run_name(bench):
    return bench.get("run_name") or bench.get("name", "?")


def family(name):
    return name.split("/", 1)[0]


def time_ns(bench):
    unit = bench.get("time_unit", "ns")
    factor = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
    return bench["real_time"] * factor


def is_service_report(data):
    return any("dedup_ratio" in b for b in data.get("benchmarks", []))


def is_federation_report(data):
    return any("prune_ratio" in b for b in data.get("benchmarks", []))


# ---------------------------------------------------------------------------
# substrate mode


def gate_substrate(data, args):
    times = {}
    for b in select_runs(data):
        times.setdefault(run_name(b), time_ns(b))
    failures = []

    def pairs(prefix):
        for name, t in sorted(times.items()):
            if name.startswith(prefix + "/"):
                naive = times.get(name.replace(prefix, prefix + "Naive", 1))
                if naive is not None:
                    yield name, t, naive

    checked = 0
    for name, vec, naive in pairs("BM_ExecuteBroadQuery"):
        checked += 1
        bound = naive * args.broad_tolerance
        verdict = "ok" if vec <= bound else "FAIL"
        print(f"{name}: vectorized {vec:.0f} ns vs naive {naive:.0f} ns "
              f"({naive / vec:.2f}x, tolerance {args.broad_tolerance:.2f}) "
              f"[{verdict}]")
        if vec > bound:
            failures.append(f"{name}: vectorized path more than "
                            f"{args.broad_tolerance:.2f}x slower than "
                            "naive scan")

    # The full speedup floor applies to the largest dataset; smaller
    # (smoke-scaled) sizes can fall below the k-d index threshold by
    # design, so they are only required not to regress past the naive
    # scan.
    selective = list(pairs("BM_ExecuteSelectiveQuery"))
    largest = max((n for n, _, _ in selective),
                  key=lambda n: int(n.rsplit("/", 1)[1]),
                  default=None)
    for name, vec, naive in selective:
        checked += 1
        need = args.min_selective_speedup if name == largest else 1.0
        ratio = naive / vec
        verdict = "ok" if ratio >= need else "FAIL"
        print(f"{name}: vectorized {vec:.0f} ns vs naive {naive:.0f} ns "
              f"({ratio:.2f}x, need >= {need:.1f}x) [{verdict}]")
        if ratio < need:
            failures.append(f"{name}: selective speedup {ratio:.2f}x below "
                            f"{need:.1f}x")

    # Out-of-core tier (BM_Ooc*): every entry must have returned exact
    # answers (the differential battery against the in-memory engine);
    # at the largest dataset size the data must exceed the buffer pool
    # by --min-ooc-ratio and the warm broad query must stay within
    # --ooc-warm-tolerance of its memory-resident twin. Smaller
    # (smoke-scaled) sizes run with a pool floored at one page, where
    # "warm" cannot hold, so like the selective floor above they are
    # only checked for exactness. The selective warm bench is reported
    # but not latency-gated: with the dataset 8x the pool, a
    # full-scan query is re-fault/CRC-bandwidth-bound by construction
    # (docs/performance.md).
    ooc = {}
    for b in select_runs(data):
        name = run_name(b)
        if name.startswith("BM_Ooc") and "exact_match" in b:
            ooc.setdefault(name, b)
    ooc_checked = 0
    for name, b in sorted(ooc.items()):
        ooc_checked += 1
        exact = b.get("exact_match", 0.0)
        verdict = "ok" if exact == 1.0 else "FAIL"
        print(f"{name}: exact_match {exact:.0f} [{verdict}]")
        if exact != 1.0:
            failures.append(f"{name}: paged answers diverged from the "
                            "in-memory engine")

    def size_of(name):
        try:
            return int(name.rsplit("/", 1)[1])
        except (IndexError, ValueError):
            return -1

    ooc_largest = max(ooc, key=size_of, default=None)
    if ooc_largest is not None:
        b = ooc[ooc_largest]
        pool = b.get("pool_bytes", 0.0)
        dbytes = b.get("data_bytes", 0.0)
        ratio = dbytes / pool if pool else 0.0
        verdict = "ok" if ratio >= args.min_ooc_ratio else "FAIL"
        print(f"{ooc_largest}: data {dbytes:.0f} B over pool {pool:.0f} B "
              f"({ratio:.1f}x, need >= {args.min_ooc_ratio:.1f}x) "
              f"[{verdict}]")
        if ratio < args.min_ooc_ratio:
            failures.append(f"{ooc_largest}: dataset only {ratio:.1f}x the "
                            f"buffer pool, below "
                            f"{args.min_ooc_ratio:.1f}x")

        suffix = "/" + ooc_largest.rsplit("/", 1)[1]
        warm_name = "BM_OocBroadQueryWarm" + suffix
        mem_name = "BM_OocMemBroadQuery" + suffix
        warm = times.get(warm_name)
        mem = times.get(mem_name)
        page = b.get("page_bytes", 0.0)
        if page and pool < 2 * page:
            # A warm broad query needs its index page and first data
            # page simultaneously resident; under two pages of budget
            # (the eviction-churn CI configuration) every "warm" pin
            # re-faults, so only exactness and the ratio are gated.
            print(f"{warm_name}: warm gate skipped (pool {pool:.0f} B "
                  f"holds fewer than two {page:.0f} B pages — "
                  "eviction-churn configuration)")
        elif warm is None or mem is None:
            failures.append(f"{warm_name}: warm/memory-resident pair "
                            f"incomplete ({warm_name}: "
                            f"{'present' if warm else 'missing'}, "
                            f"{mem_name}: "
                            f"{'present' if mem else 'missing'})")
        else:
            bound = mem * args.ooc_warm_tolerance
            verdict = "ok" if warm <= bound else "FAIL"
            print(f"{warm_name}: warm {warm:.0f} ns vs memory-resident "
                  f"{mem:.0f} ns ({warm / mem:.2f}x, tolerance "
                  f"{args.ooc_warm_tolerance:.2f}x) [{verdict}]")
            if warm > bound:
                failures.append(f"{warm_name}: warm query {warm / mem:.2f}x "
                                f"the memory-resident path, over "
                                f"{args.ooc_warm_tolerance:.2f}x")

        # Physical-layout gates over the cold variant matrix. Pairing is
        # by name: stripping the Comp / Pread suffixes of a variant must
        # yield another benchmark in the artifact; pairs whose other half
        # is absent (older artifacts, filtered runs) are skipped, not
        # failed.
        for base in ("BM_OocBroadQueryCold", "BM_OocSelectiveQueryCold"):
            for pread_suffix in ("", "Pread"):
                raw = ooc.get(base + pread_suffix + suffix)
                comp = ooc.get(base + "Comp" + pread_suffix + suffix)
                if raw is None or comp is None:
                    continue
                raw_b = raw.get("bytes_read_per_iter", 0.0)
                comp_b = comp.get("bytes_read_per_iter", 0.0)
                if comp_b <= 0:
                    failures.append(f"{base}Comp{pread_suffix}{suffix}: no "
                                    "bytes_read_per_iter counter")
                    continue
                ratio = raw_b / comp_b
                need = args.min_compress_bytes_ratio
                verdict = "ok" if ratio >= need else "FAIL"
                print(f"{base}Comp{pread_suffix}{suffix}: cold read "
                      f"{comp_b:.0f} B/query vs raw {raw_b:.0f} B/query "
                      f"({ratio:.1f}x fewer, need >= {need:.1f}x) "
                      f"[{verdict}]")
                if ratio < need:
                    failures.append(f"{base}Comp{pread_suffix}{suffix}: "
                                    f"compressed cold query reads only "
                                    f"{ratio:.1f}x fewer bytes than raw, "
                                    f"below {need:.1f}x")
            for comp_infix in ("", "Comp"):
                mmap_name = base + comp_infix + suffix
                pread_name = base + comp_infix + "Pread" + suffix
                mmap_t = times.get(mmap_name)
                pread_t = times.get(pread_name)
                if mmap_t is None or pread_t is None:
                    continue
                bound = mmap_t * args.pread_tolerance
                verdict = "ok" if pread_t <= bound else "FAIL"
                print(f"{pread_name}: cold {pread_t:.0f} ns vs mmap "
                      f"{mmap_t:.0f} ns ({pread_t / mmap_t:.2f}x, "
                      f"tolerance {args.pread_tolerance:.2f}x) [{verdict}]")
                if pread_t > bound:
                    failures.append(f"{pread_name}: pread cold median "
                                    f"{pread_t / mmap_t:.2f}x the mmap "
                                    f"path, over "
                                    f"{args.pread_tolerance:.2f}x")

    if checked == 0 and ooc_checked == 0:
        failures.append("no vectorized/naive bench pairs or out-of-core "
                        "runs found")
    return failures


# ---------------------------------------------------------------------------
# service mode


def gate_service(data, args):
    runs = select_runs(data)
    failures = []
    exempt = re.compile(args.dedup_exempt)

    baseline_p99 = {}
    if args.baseline:
        for b in select_runs(load_json(args.baseline)):
            p99 = b.get("p99_us")
            if p99 is None:
                continue
            fam = family(run_name(b))
            baseline_p99[fam] = max(baseline_p99.get(fam, 0.0), p99)

    checked = 0
    for b in runs:
        name = run_name(b)
        if "dedup_ratio" not in b:
            continue
        checked += 1
        if b.get("error_occurred"):
            failures.append(f"{name}: run failed: "
                            f"{b.get('error_message', 'unknown error')}")
            continue
        if b.get("sessions_failed", 0):
            failures.append(f"{name}: {b['sessions_failed']} session(s) "
                            "failed")

        sessions = b.get("sessions", 0)
        if sessions < args.min_sessions:
            failures.append(f"{name}: only {sessions} sessions, need >= "
                            f"{args.min_sessions}")

        dedup = b.get("dedup_ratio", 0.0)
        if exempt.search(name):
            print(f"{name}: dedup {dedup:.4f} (exempt), "
                  f"sessions {sessions}")
        else:
            # N sessions over one shared workload can at best dedup
            # 1 - 1/N, so smoke-scaled runs with few sessions get a
            # proportionally lower floor (with 5% slack for stragglers
            # racing the single flight); full-scale runs are held to
            # --min-dedup.
            floor = args.min_dedup
            if sessions and sessions > 1:
                floor = min(floor, (1.0 - 1.0 / sessions) * 0.95)
            verdict = "ok" if dedup >= floor else "FAIL"
            print(f"{name}: dedup {dedup:.4f} (need >= {floor:.2f}), "
                  f"sessions {sessions} [{verdict}]")
            if dedup < floor:
                failures.append(f"{name}: dedup ratio {dedup:.4f} below "
                                f"{floor:.2f}")

        p99 = b.get("p99_us")
        base = baseline_p99.get(family(name))
        if p99 is not None and base is not None and base > 0:
            bound = base * args.p99_tolerance
            verdict = "ok" if p99 <= bound else "FAIL"
            print(f"{name}: p99 {p99:.1f} us vs baseline {base:.1f} us "
                  f"(tolerance {args.p99_tolerance:.2f}x) [{verdict}]")
            if p99 > bound:
                failures.append(f"{name}: p99 {p99:.1f} us exceeds "
                                f"baseline {base:.1f} us by more than "
                                f"{args.p99_tolerance:.2f}x")
        elif p99 is not None and args.baseline:
            print(f"{name}: p99 {p99:.1f} us (no baseline entry for "
                  f"family '{family(name)}'; latency not gated)")

    if checked == 0:
        failures.append("no service-load runs found")
    return failures


# ---------------------------------------------------------------------------
# federation mode


def gate_federation(data, args):
    runs = select_runs(data)
    failures = []
    exempt = re.compile(args.prune_exempt)

    checked = 0
    for b in runs:
        name = run_name(b)
        if "prune_ratio" not in b:
            continue
        checked += 1
        if b.get("error_occurred"):
            failures.append(f"{name}: run failed: "
                            f"{b.get('error_message', 'unknown error')}")
            continue

        partial = b.get("partial_coverage", 0.0)
        if partial and not args.allow_partial:
            failures.append(f"{name}: partial coverage (a backend failed "
                            "or exhausted its budget); pass "
                            "--allow-partial if that is expected")

        paid = b.get("federated_queries", b.get("paid_queries"))
        pruned = b.get("pruned_queries", 0.0)
        ratio = b.get("prune_ratio", 0.0)
        if exempt.search(name):
            print(f"{name}: prune {ratio:.4f} (exempt), paid {paid:.0f}")
        else:
            verdict = "ok" if ratio >= args.min_prune_ratio else "FAIL"
            print(f"{name}: prune {ratio:.4f} "
                  f"(need >= {args.min_prune_ratio:.4f}), "
                  f"paid {paid:.0f}, pruned {pruned:.0f} [{verdict}]")
            if ratio < args.min_prune_ratio:
                failures.append(f"{name}: prune ratio {ratio:.4f} below "
                                f"{args.min_prune_ratio:.4f}")

        sequential = b.get("sequential_queries")
        if sequential is not None and paid is not None:
            verdict = "ok" if paid < sequential else "FAIL"
            print(f"{name}: federated {paid:.0f} vs sequential "
                  f"{sequential:.0f} queries [{verdict}]")
            if paid >= sequential:
                failures.append(f"{name}: federated run paid {paid:.0f} "
                                f"queries, not fewer than the "
                                f"{sequential:.0f} sequential ones")

        match = b.get("skyline_match")
        if match is not None:
            verdict = "ok" if match == 1.0 else "FAIL"
            print(f"{name}: skyline_match {match:.0f} "
                  f"(size {b.get('skyline_size', 0):.0f}) [{verdict}]")
            if match != 1.0:
                failures.append(f"{name}: federated union skyline does "
                                "not equal the merged-dataset ground "
                                "truth")

    # Durability runs (BM_FederatedResume) carry no prune_ratio — the
    # interesting quantity is the cross-life duplicate count, which must
    # be exactly zero: a resumed session pays only for work the first
    # life had not reached. Their skyline_match shares the 1.0 floor.
    for b in runs:
        name = run_name(b)
        dup = b.get("resumed_duplicate_queries")
        if dup is None or "prune_ratio" in b:
            continue
        checked += 1
        if b.get("error_occurred"):
            failures.append(f"{name}: run failed: "
                            f"{b.get('error_message', 'unknown error')}")
            continue
        verdict = "ok" if dup == 0 else "FAIL"
        print(f"{name}: resumed duplicates {dup:.0f} (need == 0) "
              f"[{verdict}]")
        if dup != 0:
            failures.append(f"{name}: resumed session re-issued "
                            f"{dup:.0f} queries its first life already "
                            "paid for")
        match = b.get("skyline_match")
        if match is not None:
            verdict = "ok" if match == 1.0 else "FAIL"
            print(f"{name}: skyline_match {match:.0f} [{verdict}]")
            if match != 1.0:
                failures.append(f"{name}: resumed skyline does not "
                                "equal the merged-dataset ground truth")

    if checked == 0:
        failures.append("no federation runs found")
    return failures


# ---------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("bench_json",
                    help="path to BENCH_substrate.json or BENCH_service.json")
    ap.add_argument("--mode",
                    choices=["auto", "substrate", "service", "federation"],
                    default="auto",
                    help="gate to apply (default: auto-detect by the "
                         "presence of dedup_ratio / prune_ratio counters)")
    # substrate knobs
    ap.add_argument("--min-selective-speedup", type=float, default=3.0,
                    help="required naive/vectorized ratio on the "
                         "selective-query bench (default: 3.0)")
    ap.add_argument("--broad-tolerance", type=float, default=1.10,
                    help="max vectorized/naive ratio tolerated on the "
                         "broad-query bench (default: 1.10)")
    ap.add_argument("--min-ooc-ratio", type=float, default=8.0,
                    help="min data_bytes/pool_bytes ratio the out-of-core "
                         "tier must demonstrate at its largest size "
                         "(default: 8.0)")
    ap.add_argument("--ooc-warm-tolerance", type=float, default=2.0,
                    help="max warm-paged/memory-resident ratio on the "
                         "broad-query bench at the largest size "
                         "(default: 2.0)")
    ap.add_argument("--min-compress-bytes-ratio", type=float, default=2.0,
                    help="min raw/compressed stored-bytes-read ratio the "
                         "cold out-of-core tier must demonstrate at its "
                         "largest size (default: 2.0)")
    ap.add_argument("--pread-tolerance", type=float, default=1.10,
                    help="max pread/mmap cold-median ratio at the largest "
                         "out-of-core size (default: 1.10)")
    # service knobs
    ap.add_argument("--baseline", default=None,
                    help="pinned BENCH_service.json to gate p99 against")
    ap.add_argument("--p99-tolerance", type=float, default=2.5,
                    help="max candidate/baseline p99 ratio (default: 2.5; "
                         "generous because CI runners vary)")
    ap.add_argument("--min-dedup", type=float, default=0.9,
                    help="min cross-session dedup ratio on shared-cache "
                         "runs (default: 0.9)")
    ap.add_argument("--dedup-exempt", default="NoCache",
                    help="regex of run names exempt from the dedup floor "
                         "(default: NoCache)")
    ap.add_argument("--min-sessions", type=int, default=1,
                    help="min concurrent sessions per run (default: 1)")
    # federation knobs
    ap.add_argument("--min-prune-ratio", type=float, default=0.005,
                    help="min fraction of would-be queries answered from "
                         "the shared dominance snapshot (default: 0.005)")
    ap.add_argument("--prune-exempt", default="join",
                    help="regex of run names exempt from the prune floor "
                         "(default: join — join mode disables pruning)")
    ap.add_argument("--allow-partial", action="store_true",
                    help="tolerate partial_coverage runs (expected when a "
                         "backend is killed on purpose)")
    args = ap.parse_args()

    data = load_json(args.bench_json)
    mode = args.mode
    if mode == "auto":
        if is_federation_report(data):
            mode = "federation"
        elif is_service_report(data):
            mode = "service"
        else:
            mode = "substrate"
        print(f"mode: {mode} (auto-detected)")

    if mode == "federation":
        failures = gate_federation(data, args)
    elif mode == "service":
        failures = gate_service(data, args)
    else:
        failures = gate_substrate(data, args)

    for msg in failures:
        print("error:", msg, file=sys.stderr)
    if failures:
        # Every failure message leads with the offending benchmark name;
        # repeat the distinct names in one line for quick CI triage.
        names = sorted({msg.split(":", 1)[0] for msg in failures})
        print("failed benchmarks:", ", ".join(names), file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
