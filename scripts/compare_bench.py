#!/usr/bin/env python3
"""Perf gate over a BENCH_substrate.json produced by run_benches.sh.

Compares the vectorized execution paths against the row-at-a-time
baselines pinned by the *Naive benches in micro_substrate and fails
(exit 1) when the engine has regressed:

  * BM_ExecuteBroadQuery must not be more than --broad-tolerance slower
    than BM_ExecuteBroadQueryNaive (the early-exit rank-order scan is
    fastest exactly on broad queries, so this is the bound the engine
    could most plausibly lose; both paths early-exit after ~k rows, so
    they measure near-identical and a strict <= would flake on runner
    noise), and
  * BM_ExecuteSelectiveQuery must beat BM_ExecuteSelectiveQueryNaive by
    at least --min-selective-speedup (default 3x, the repo's acceptance
    floor for the columnar engine).

Only the Python standard library is used. Median aggregates are
preferred when the JSON carries repetitions; raw iterations are used
otherwise.
"""

import argparse
import json
import sys


def load_times(path):
    """name -> real_time in ns, preferring median aggregates."""
    with open(path) as f:
        data = json.load(f)
    medians = {}
    raw = {}
    for b in data.get("benchmarks", []):
        unit = b.get("time_unit", "ns")
        factor = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}[unit]
        t = b["real_time"] * factor
        if b.get("aggregate_name") == "median":
            medians[b["run_name"]] = t
        elif b.get("run_type") != "aggregate":
            raw.setdefault(b["name"], t)
    return medians or raw


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("substrate_json", help="path to BENCH_substrate.json")
    ap.add_argument("--min-selective-speedup", type=float, default=3.0,
                    help="required naive/vectorized ratio on the "
                         "selective-query bench (default: 3.0)")
    ap.add_argument("--broad-tolerance", type=float, default=1.10,
                    help="max vectorized/naive ratio tolerated on the "
                         "broad-query bench (default: 1.10)")
    args = ap.parse_args()

    times = load_times(args.substrate_json)
    failures = []

    def pairs(prefix):
        for name, t in sorted(times.items()):
            if name.startswith(prefix + "/"):
                naive = times.get(name.replace(prefix, prefix + "Naive", 1))
                if naive is not None:
                    yield name, t, naive

    checked = 0
    for name, vec, naive in pairs("BM_ExecuteBroadQuery"):
        checked += 1
        bound = naive * args.broad_tolerance
        verdict = "ok" if vec <= bound else "FAIL"
        print(f"{name}: vectorized {vec:.0f} ns vs naive {naive:.0f} ns "
              f"({naive / vec:.2f}x, tolerance {args.broad_tolerance:.2f}) "
              f"[{verdict}]")
        if vec > bound:
            failures.append(f"{name}: vectorized path more than "
                            f"{args.broad_tolerance:.2f}x slower than "
                            "naive scan")

    # The full speedup floor applies to the largest dataset; smaller
    # (smoke-scaled) sizes can fall below the k-d index threshold by
    # design, so they are only required not to regress past the naive
    # scan.
    selective = list(pairs("BM_ExecuteSelectiveQuery"))
    largest = max((n for n, _, _ in selective),
                  key=lambda n: int(n.rsplit("/", 1)[1]),
                  default=None)
    for name, vec, naive in selective:
        checked += 1
        need = args.min_selective_speedup if name == largest else 1.0
        ratio = naive / vec
        verdict = "ok" if ratio >= need else "FAIL"
        print(f"{name}: vectorized {vec:.0f} ns vs naive {naive:.0f} ns "
              f"({ratio:.2f}x, need >= {need:.1f}x) [{verdict}]")
        if ratio < need:
            failures.append(f"{name}: selective speedup {ratio:.2f}x below "
                            f"{need:.1f}x")

    if checked == 0:
        failures.append("no vectorized/naive bench pairs found in "
                        + args.substrate_json)

    for msg in failures:
        print("error:", msg, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
