// Figure 20: the anytime property of SQ-DB-SKY and RQ-DB-SKY — query
// cost as a function of skyline-discovery progress (DOT dataset, 100K
// tuples, 5 range attributes, k = 10).
//
// Expected shape: both algorithms confirm skyline tuples steadily from
// the first queries; the curves coincide early (the paper observes
// identical behaviour up to tuple ~16) and SQ's revisits make it fall
// behind RQ toward the tail.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig20_anytime_range",
                             "algorithm,skyline_index,query_cost");
  return sink;
}

const data::Table& Dot() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(100000);
    o.seed = 2000;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    // Five range predicates with a built-in trade-off (DistanceGroup is
    // inverted), giving the paper's ~30-tuple skyline; the group
    // attributes are exposed as two-ended ranges here.
    data::Table t = bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kTaxiIn,
                      dataset::FlightsAttrs::kDistanceGroup,
                      dataset::FlightsAttrs::kAirTimeGroup}),
        "project");
    for (int a = 0; a < t.schema().num_attributes(); ++a) {
      t = bench::Unwrap(t.WithInterface(a, data::InterfaceType::kRQ),
                        "recast");
    }
    return t;
  }();
  return table;
}

// Cost at which each skyline tuple was confirmed, from the trace.
std::vector<int64_t> ConfirmCosts(const core::DiscoveryResult& r) {
  std::vector<int64_t> costs;
  for (const core::ProgressPoint& p : r.trace) {
    while (static_cast<int64_t>(costs.size()) < p.skyline_discovered) {
      costs.push_back(p.queries_issued);
    }
  }
  return costs;
}

void BM_Fig20_SQ(benchmark::State& state) {
  const data::Table& t = Dot();
  int64_t cost = 0, skyline = 0;
  for (auto _ : state) {
    auto iface =
        bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    core::SqDbSkyOptions opts;
    opts.common.max_queries = 200000;  // safety net only
    auto r = bench::Unwrap(core::SqDbSky(iface.get(), opts), "SqDbSky");
    cost = r.query_cost;
    skyline = static_cast<int64_t>(r.skyline.size());
    const auto costs = ConfirmCosts(r);
    for (size_t i = 0; i < costs.size(); ++i) {
      Sink().Row("SQ,%zu,%lld", i + 1, (long long)costs[i]);
    }
  }
  state.counters["total_cost"] = static_cast<double>(cost);
  state.counters["skyline"] = static_cast<double>(skyline);
}

void BM_Fig20_RQ(benchmark::State& state) {
  const data::Table& t = Dot();
  int64_t cost = 0, skyline = 0;
  for (auto _ : state) {
    auto iface =
        bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    auto r = bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky");
    cost = r.query_cost;
    skyline = static_cast<int64_t>(r.skyline.size());
    const auto costs = ConfirmCosts(r);
    for (size_t i = 0; i < costs.size(); ++i) {
      Sink().Row("RQ,%zu,%lld", i + 1, (long long)costs[i]);
    }
  }
  state.counters["total_cost"] = static_cast<double>(cost);
  state.counters["skyline"] = static_cast<double>(skyline);
}

}  // namespace

BENCHMARK(BM_Fig20_SQ)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig20_RQ)->Iterations(1)->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
