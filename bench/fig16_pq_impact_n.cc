// Figure 16: PQ-DB-SKY query cost as the database size grows from 20K to
// 100K, for 3, 4, and 5 point-predicate attributes (the DOT group
// attributes, domain size 11), k = 10.
//
// Expected shape: cost barely moves with n but jumps significantly with
// each added dimension — the non-plane attributes multiply the number of
// 2D subspaces to sweep (paper: ~500 at 3D to ~5,000+ at 5D).
//
// Execution: the 15 (m, n) points run as one parallel sweep under
// HDSKY_THREADS (see fig14 for the pattern); results are identical at
// every thread count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/pq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;
const int kMs[] = {3, 4, 5};
const int64_t kNThousands[] = {20, 40, 60, 80, 100};
constexpr int64_t kNumNs =
    static_cast<int64_t>(sizeof(kNThousands) / sizeof(kNThousands[0]));

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig16_pq_impact_n",
                             "m,n,skyline,pq_cost");
  return sink;
}

const data::Table& DotGroups() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(100000);
    o.seed = 1600;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    // DistanceGroup (longer preferred, inverted) conflicts with
    // AirTimeGroup (shorter preferred), so even the 3D projection has a
    // non-trivial group-staircase skyline, as the real DOT groups do.
    return bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDistanceGroup,
                      dataset::FlightsAttrs::kAirTimeGroup,
                      dataset::FlightsAttrs::kDelayGroup,
                      dataset::FlightsAttrs::kTaxiOutGroup,
                      dataset::FlightsAttrs::kArrDelayGroup}),
        "project");
  }();
  return table;
}

struct Point {
  int64_t n = 0;
  int64_t skyline = 0;
  int64_t cost = 0;
};

Point ComputePoint(int m, int64_t n_thousands) {
  Point p;
  p.n = bench::Scaled(n_thousands * 1000);
  std::vector<int> attrs(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) attrs[static_cast<size_t>(i)] = i;
  data::Table projected =
      bench::Unwrap(DotGroups().Project(attrs), "project-m");
  common::Rng rng(1600 + static_cast<uint64_t>(m * 1000) +
                  static_cast<uint64_t>(p.n));
  const data::Table t = bench::Unwrap(
      projected.Sample(std::min(p.n, projected.num_rows()), &rng),
      "sample");
  p.skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
  p.cost = bench::Unwrap(core::PqDbSky(iface.get()), "PqDbSky").query_cost;
  return p;
}

// Row-major over (m, n), matching the benchmark registration order.
const std::vector<Point>& AllPoints() {
  static const std::vector<Point> points = [] {
    DotGroups();  // materialize shared state before fanning out
    const int64_t count =
        static_cast<int64_t>(sizeof(kMs) / sizeof(kMs[0])) * kNumNs;
    return bench::RunTrialsParallel(count, [](int64_t i) {
      return ComputePoint(kMs[i / kNumNs], kNThousands[i % kNumNs]);
    });
  }();
  return points;
}

void BM_Fig16(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int64_t n_thousands = state.range(1);
  size_t index = 0;
  for (int64_t mi = 0; kMs[mi] != m; ++mi) index += kNumNs;
  for (int64_t ni = 0; kNThousands[ni] != n_thousands; ++ni) ++index;
  Point p;
  for (auto _ : state) {
    p = AllPoints()[index];
  }
  state.counters["skyline"] = static_cast<double>(p.skyline);
  state.counters["pq_cost"] = static_cast<double>(p.cost);
  Sink().Row("%d,%lld,%lld,%lld", m, (long long)p.n, (long long)p.skyline,
             (long long)p.cost);
}

}  // namespace

BENCHMARK(BM_Fig16)
    ->ArgsProduct({{3, 4, 5}, {20, 40, 60, 80, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
