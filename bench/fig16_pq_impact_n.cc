// Figure 16: PQ-DB-SKY query cost as the database size grows from 20K to
// 100K, for 3, 4, and 5 point-predicate attributes (the DOT group
// attributes, domain size 11), k = 10.
//
// Expected shape: cost barely moves with n but jumps significantly with
// each added dimension — the non-plane attributes multiply the number of
// 2D subspaces to sweep (paper: ~500 at 3D to ~5,000+ at 5D).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/pq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig16_pq_impact_n",
                             "m,n,skyline,pq_cost");
  return sink;
}

const data::Table& DotGroups() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(100000);
    o.seed = 1600;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    // DistanceGroup (longer preferred, inverted) conflicts with
    // AirTimeGroup (shorter preferred), so even the 3D projection has a
    // non-trivial group-staircase skyline, as the real DOT groups do.
    return bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDistanceGroup,
                      dataset::FlightsAttrs::kAirTimeGroup,
                      dataset::FlightsAttrs::kDelayGroup,
                      dataset::FlightsAttrs::kTaxiOutGroup,
                      dataset::FlightsAttrs::kArrDelayGroup}),
        "project");
  }();
  return table;
}

void BM_Fig16(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int64_t n = bench::Scaled(state.range(1) * 1000);
  std::vector<int> attrs(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) attrs[static_cast<size_t>(i)] = i;
  data::Table projected =
      bench::Unwrap(DotGroups().Project(attrs), "project-m");
  common::Rng rng(1600 + static_cast<uint64_t>(m * 1000) +
                  static_cast<uint64_t>(n));
  const data::Table t = bench::Unwrap(
      projected.Sample(std::min(n, projected.num_rows()), &rng),
      "sample");
  const int64_t skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());

  int64_t cost = 0;
  for (auto _ : state) {
    auto iface =
        bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    auto r = bench::Unwrap(core::PqDbSky(iface.get()), "PqDbSky");
    cost = r.query_cost;
  }
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["pq_cost"] = static_cast<double>(cost);
  Sink().Row("%d,%lld,%lld,%lld", m, (long long)n, (long long)skyline,
             (long long)cost);
}

}  // namespace

BENCHMARK(BM_Fig16)
    ->ArgsProduct({{3, 4, 5}, {20, 40, 60, 80, 100}})
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
