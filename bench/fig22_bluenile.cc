// Figure 22: the Blue Nile live experiment — MQ-DB-SKY vs BASELINE on
// the (simulated) diamond catalog: cumulative query cost as skyline
// discovery progresses; k = 50, ranking = price low-to-high, BASELINE
// cut off at 10,000 queries as in the paper.
//
// Expected shape: MQ-DB-SKY walks the full skyline (paper: 2,149 tuples
// at ~3.5 queries each); BASELINE burns its 10,000-query budget having
// stumbled on only a fraction of the skyline (paper: 1,113) — and could
// not certify even those without finishing the crawl.

#include <algorithm>
#include <set>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/baseline_crawler.h"
#include "core/mq_db_sky.h"
#include "dataset/blue_nile.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 50;
constexpr int64_t kBaselineCutoff = 10000;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig22_bluenile",
                             "algorithm,skyline_index,query_cost");
  return sink;
}

const data::Table& BlueNile() {
  static const data::Table table = [] {
    dataset::BlueNileOptions o;
    o.num_tuples = bench::Scaled(209666);
    return bench::Unwrap(dataset::GenerateBlueNile(o), "blue_nile");
  }();
  return table;
}

std::shared_ptr<interface::RankingPolicy> PriceRanking() {
  return interface::MakeLexicographicRanking(
      {dataset::BlueNileAttrs::kPrice});
}

void EmitCurve(const char* algo, const core::ProgressTrace& trace) {
  std::vector<int64_t> costs;
  for (const core::ProgressPoint& p : trace) {
    while (static_cast<int64_t>(costs.size()) < p.skyline_discovered) {
      costs.push_back(p.queries_issued);
    }
  }
  // Thin the curve to ~200 CSV points.
  const size_t step = std::max<size_t>(1, costs.size() / 200);
  for (size_t i = 0; i < costs.size(); i += step) {
    Sink().Row("%s,%zu,%lld", algo, i + 1, (long long)costs[i]);
  }
  if (!costs.empty()) {
    Sink().Row("%s,%zu,%lld", algo, costs.size(),
               (long long)costs.back());
  }
}

void BM_Fig22_MQ(benchmark::State& state) {
  const data::Table& t = BlueNile();
  int64_t cost = 0, skyline = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, PriceRanking(), kK);
    auto r = bench::Unwrap(core::MqDbSky(iface.get()), "MqDbSky");
    cost = r.query_cost;
    skyline = static_cast<int64_t>(r.skyline.size());
    EmitCurve("MQ-DB-SKY", r.trace);
  }
  state.counters["total_cost"] = static_cast<double>(cost);
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["cost_per_skyline"] =
      skyline ? static_cast<double>(cost) / static_cast<double>(skyline)
              : 0.0;
}

void BM_Fig22_Baseline(benchmark::State& state) {
  const data::Table& t = BlueNile();
  int64_t found_true_skyline = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, PriceRanking(), kK);
    core::CrawlOptions opts;
    opts.common.max_queries = kBaselineCutoff;
    auto crawl = bench::Unwrap(core::CrawlDatabase(iface.get(), opts),
                               "CrawlDatabase");
    // True-skyline tuples among the crawled, stamped by arrival — what
    // the paper plots (BASELINE itself could not certify them).
    const std::set<data::TupleId> truth = [&] {
      const auto sky = skyline::SkylineSFS(t);
      return std::set<data::TupleId>(sky.begin(), sky.end());
    }();
    std::vector<int64_t> arrivals;
    for (size_t i = 0; i < crawl.ids.size(); ++i) {
      if (truth.count(crawl.ids[i])) {
        arrivals.push_back(crawl.found_at[i]);
      }
    }
    std::sort(arrivals.begin(), arrivals.end());
    const size_t step = std::max<size_t>(1, arrivals.size() / 200);
    for (size_t i = 0; i < arrivals.size(); i += step) {
      Sink().Row("BASELINE,%zu,%lld", i + 1, (long long)arrivals[i]);
    }
    found_true_skyline = static_cast<int64_t>(arrivals.size());
  }
  state.counters["skyline_found_at_cutoff"] =
      static_cast<double>(found_true_skyline);
  state.counters["cutoff"] = static_cast<double>(kBaselineCutoff);
}

}  // namespace

BENCHMARK(BM_Fig22_MQ)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig22_Baseline)->Iterations(1)->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
