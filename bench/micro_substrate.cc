// Microbenchmarks of the substrate (classic wall-clock google-benchmark):
// top-k query evaluation through the interface (broad vs selective, with
// and without the k-d index), local skyline operators, K-skyband, and
// k-d index construction. These quantify the simulator itself, not the
// paper's query-cost metric.

#include <map>
#include <numeric>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dataset/synthetic.h"
#include "interface/kd_index.h"
#include "interface/ranking.h"
#include "skyline/bbs.h"
#include "skyline/compute.h"
#include "skyline/skyband.h"

namespace {

using namespace hdsky;

const data::Table& Data(int64_t n) {
  static std::map<int64_t, data::Table> cache;
  n = bench::Scaled(n);
  auto it = cache.find(n);
  if (it == cache.end()) {
    dataset::SyntheticOptions o;
    o.num_tuples = n;
    o.num_attributes = 4;
    o.domain_size = 1000;
    o.seed = 3500;
    it = cache
             .emplace(n,
                      bench::Unwrap(dataset::GenerateSynthetic(o), "data"))
             .first;
  }
  return it->second;
}

/// Interface with all fast paths disabled: the row-at-a-time rank-order
/// scan the vectorized engine replaced. The *Naive benches pin the
/// pre-engine baseline so CI can assert the engine never regresses past
/// it (scripts/compare_bench.py).
std::unique_ptr<interface::TopKInterface> MakeNaiveInterface(
    const data::Table* t, int k) {
  interface::TopKOptions opts;
  opts.k = k;
  opts.vectorized_scan = false;
  opts.kd_index_threshold = -1;
  return bench::Unwrap(interface::TopKInterface::Create(
                           t, interface::MakeSumRanking(), opts),
                       "TopKInterface::Create");
}

interface::Query BroadQuery() {
  interface::Query q(4);
  q.AddAtMost(0, 900);
  return q;
}

interface::Query SelectiveQuery() {
  interface::Query q(4);
  q.AddAtMost(0, 50).AddAtMost(1, 50).AddAtLeast(2, 950);
  return q;
}

void RunQueryBench(benchmark::State& state, interface::HiddenDatabase* iface,
                   const interface::Query& q) {
  // Buffer-reuse Execute: the measured loop matches how the discovery
  // algorithms issue queries (one QueryResult reused across the run).
  interface::QueryResult r;
  for (auto _ : state) {
    auto status = iface->Execute(q, &r);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ExecuteBroadQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
  RunQueryBench(state, iface.get(), BroadQuery());
}

void BM_ExecuteBroadQueryNaive(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = MakeNaiveInterface(&t, 10);
  RunQueryBench(state, iface.get(), BroadQuery());
}

void BM_ExecuteSelectiveQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
  RunQueryBench(state, iface.get(), SelectiveQuery());
}

void BM_ExecuteSelectiveQueryNaive(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = MakeNaiveInterface(&t, 10);
  RunQueryBench(state, iface.get(), SelectiveQuery());
}

void BM_ExecutePointQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
  interface::Query q(4);
  q.AddEquals(0, 500).AddEquals(1, 500);
  RunQueryBench(state, iface.get(), q);
}

void BM_KdIndexBuild(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  std::vector<int64_t> rank(static_cast<size_t>(t.num_rows()));
  std::iota(rank.begin(), rank.end(), 0);
  for (auto _ : state) {
    interface::KdIndex index(&t, rank);
    benchmark::DoNotOptimize(index.num_nodes());
  }
}

void BM_SkylineBNL(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::SkylineBNL(t);
    benchmark::DoNotOptimize(s.size());
  }
}

void BM_SkylineSFS(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::SkylineSFS(t);
    benchmark::DoNotOptimize(s.size());
  }
}

void BM_SkylineDnC(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::SkylineDnC(t);
    benchmark::DoNotOptimize(s.size());
  }
}

void BM_SkylineBBS(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  const skyline::RTree tree =
      bench::Unwrap(skyline::RTree::Build(&t), "rtree");
  for (auto _ : state) {
    auto s = skyline::SkylineBBS(tree);
    benchmark::DoNotOptimize(s->size());
  }
}

void BM_RTreeBuild(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto tree = skyline::RTree::Build(&t);
    benchmark::DoNotOptimize(tree->num_nodes());
  }
}

void BM_KSkyband(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::KSkyband(t, 3);
    benchmark::DoNotOptimize(s.size());
  }
}

}  // namespace

BENCHMARK(BM_ExecuteBroadQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecuteBroadQueryNaive)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecuteSelectiveQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecuteSelectiveQueryNaive)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecutePointQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_KdIndexBuild)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineBNL)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineSFS)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineDnC)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineBBS)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RTreeBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KSkyband)->Arg(10000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
