// Microbenchmarks of the substrate (classic wall-clock google-benchmark):
// top-k query evaluation through the interface (broad vs selective, with
// and without the k-d index), local skyline operators, K-skyband, and
// k-d index construction. These quantify the simulator itself, not the
// paper's query-cost metric.

#include <unistd.h>

#include <cstdlib>
#include <map>
#include <numeric>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "data/paged_table.h"
#include "dataset/pack.h"
#include "dataset/synthetic.h"
#include "interface/kd_index.h"
#include "interface/ranking.h"
#include "skyline/bbs.h"
#include "skyline/compute.h"
#include "skyline/skyband.h"

namespace {

using namespace hdsky;

const data::Table& Data(int64_t n) {
  static std::map<int64_t, data::Table> cache;
  n = bench::Scaled(n);
  auto it = cache.find(n);
  if (it == cache.end()) {
    dataset::SyntheticOptions o;
    o.num_tuples = n;
    o.num_attributes = 4;
    o.domain_size = 1000;
    o.seed = 3500;
    it = cache
             .emplace(n,
                      bench::Unwrap(dataset::GenerateSynthetic(o), "data"))
             .first;
  }
  return it->second;
}

/// Interface with all fast paths disabled: the row-at-a-time rank-order
/// scan the vectorized engine replaced. The *Naive benches pin the
/// pre-engine baseline so CI can assert the engine never regresses past
/// it (scripts/compare_bench.py).
std::unique_ptr<interface::TopKInterface> MakeNaiveInterface(
    const data::Table* t, int k) {
  interface::TopKOptions opts;
  opts.k = k;
  opts.vectorized_scan = false;
  opts.kd_index_threshold = -1;
  return bench::Unwrap(interface::TopKInterface::Create(
                           t, interface::MakeSumRanking(), opts),
                       "TopKInterface::Create");
}

interface::Query BroadQuery() {
  interface::Query q(4);
  q.AddAtMost(0, 900);
  return q;
}

interface::Query SelectiveQuery() {
  interface::Query q(4);
  q.AddAtMost(0, 50).AddAtMost(1, 50).AddAtLeast(2, 950);
  return q;
}

void RunQueryBench(benchmark::State& state, interface::HiddenDatabase* iface,
                   const interface::Query& q) {
  // Buffer-reuse Execute: the measured loop matches how the discovery
  // algorithms issue queries (one QueryResult reused across the run).
  interface::QueryResult r;
  for (auto _ : state) {
    auto status = iface->Execute(q, &r);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ExecuteBroadQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
  RunQueryBench(state, iface.get(), BroadQuery());
}

void BM_ExecuteBroadQueryNaive(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = MakeNaiveInterface(&t, 10);
  RunQueryBench(state, iface.get(), BroadQuery());
}

void BM_ExecuteSelectiveQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
  RunQueryBench(state, iface.get(), SelectiveQuery());
}

void BM_ExecuteSelectiveQueryNaive(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = MakeNaiveInterface(&t, 10);
  RunQueryBench(state, iface.get(), SelectiveQuery());
}

void BM_ExecutePointQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
  interface::Query q(4);
  q.AddEquals(0, 500).AddEquals(1, 500);
  RunQueryBench(state, iface.get(), q);
}

// ---------------------------------------------------------------------------
// Out-of-core tier: the same query shapes through TopKInterface::CreatePaged
// over a packed block file whose buffer pool is capped at 1/8 of the data
// bytes, so every cold query faults and CRC-verifies pages from disk and
// the warm working set still cannot all stay resident. The *Cold benches
// drop the pool between iterations (buffer-pool-cold; see
// docs/performance.md for what that does and does not measure), the *Warm
// benches reuse whatever the pool retained, and the BM_OocMem* twins run
// the identical queries through the memory-resident scan engine (k-d index
// off, so both sides pay a zone-pruned scan) — the pair the 2x warm gate
// in scripts/compare_bench.py compares. Counters: pool_bytes, data_bytes,
// evictions, bytes_read_per_iter (stored bytes fetched from disk per
// query, prefetch included), and exact_match (1 when a differential
// battery of queries returned bit-identical answers from the paged and
// in-memory interfaces). HDSKY_BUFFER_POOL_BYTES shrinks the pool
// further (CI's eviction-churn smoke); values above the 1/8 cap are
// clamped so the ratio gate stays meaningful.
//
// The *Cold tier comes in four variants per query shape, crossing the
// physical format with the read path:
//
//   BM_OocBroadQueryCold           format v1 (raw slots),  mmap
//   BM_OocBroadQueryColdComp       format v2 (compressed), mmap
//   BM_OocBroadQueryColdPread      format v1,              pread+readahead
//   BM_OocBroadQueryColdCompPread  format v2,              pread+readahead
//
// compare_bench.py pairs them by stripping the Comp/Pread suffixes and
// gates (a) compressed files reading >= --min-compress-bytes-ratio fewer
// stored bytes per cold query than raw at equal exactness and (b) pread
// cold medians staying within --pread-tolerance of mmap cold medians.
//
// The tier runs at k=100 (not the in-memory tier's k=10): a broad query
// at k=10 early-exits after ~40 rows and measures in the low hundreds of
// nanoseconds, where the paged path's fixed cost — two buffer-pool
// pin/unpin cycles per query — would dominate the ratio. k=100 sizes the
// per-query work like the discovery workloads that matter out-of-core
// while still fitting the first data page.

constexpr int kOocK = 100;

struct OocContext {
  std::unique_ptr<data::PagedTable> table;
  std::unique_ptr<interface::TopKInterface> iface;
  bool exact = false;
};

/// Both read paths over one packed file. The file is unlinked once both
/// tables hold it open (mmap keeps the mapping, pread keeps the fd).
struct OocGroup {
  OocContext mmap;
  OocContext pread;
};

/// Memory-resident twin of the paged engine's work: vectorized rank-order
/// scan with the k-d index disabled, so warm paged queries are compared
/// against the same algorithmic shape (zone-pruned scan), not an index
/// probe the paged path does not have.
std::unique_ptr<interface::TopKInterface> MakeScanInterface(
    const data::Table* t, int k) {
  interface::TopKOptions opts;
  opts.k = k;
  opts.kd_index_threshold = -1;
  return bench::Unwrap(interface::TopKInterface::Create(
                           t, interface::MakeSumRanking(), opts),
                       "TopKInterface::Create");
}

std::vector<interface::Query> DifferentialBattery() {
  std::vector<interface::Query> battery;
  battery.push_back(BroadQuery());
  battery.push_back(SelectiveQuery());
  interface::Query point(4);
  point.AddEquals(0, 500).AddEquals(1, 500);
  battery.push_back(point);
  battery.push_back(interface::Query(4));  // unconstrained
  interface::Query narrow(4);
  narrow.AddAtMost(0, 5).AddAtMost(1, 5);
  battery.push_back(narrow);
  interface::Query empty(4);
  empty.AddAtLeast(0, 5000);  // outside the [0, 1000) domain
  battery.push_back(empty);
  return battery;
}

bool SameAnswer(const interface::QueryResult& a,
                const interface::QueryResult& b) {
  return a.overflow == b.overflow && a.ids == b.ids && a.tuples == b.tuples;
}

/// Opens one read-path variant over `path` and proves it exact against
/// the in-memory twin with the differential battery.
OocContext MakeOocContext(const data::Table& t, const std::string& path,
                          size_t pool, data::ReadPathKind kind) {
  data::PagedTableOptions popts;
  popts.buffer_pool_bytes = pool;
  popts.read_path = kind;
  popts.readahead_pages = 8;

  OocContext ctx;
  ctx.table =
      bench::Unwrap(data::Table::OpenPaged(path, popts), "OpenPaged");

  interface::TopKOptions topk;
  topk.k = kOocK;
  ctx.iface = bench::Unwrap(
      interface::TopKInterface::CreatePaged(ctx.table.get(), topk),
      "TopKInterface::CreatePaged");

  // Differential battery: every query shape must return bit-identical
  // answers from the paged and in-memory interfaces.
  auto mem = bench::MakeInterface(&t, interface::MakeSumRanking(), kOocK);
  ctx.exact = true;
  interface::QueryResult rp, rm;
  for (const interface::Query& q : DifferentialBattery()) {
    const auto sp = ctx.iface->Execute(q, &rp);
    const auto sm = mem->Execute(q, &rm);
    if (!sp.ok() || !sm.ok() || !SameAnswer(rp, rm)) ctx.exact = false;
  }
  return ctx;
}

const OocGroup& OocFor(int64_t n, data::Compression comp) {
  static std::map<std::pair<int64_t, int>, OocGroup> cache;
  const std::pair<int64_t, int> key(bench::Scaled(n),
                                    static_cast<int>(comp));
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const data::Table& t = Data(n);
  const std::string path = "/tmp/hdsky_ooc_" +
                           std::to_string(::getpid()) + "_" +
                           std::to_string(key.first) + "_c" +
                           std::to_string(key.second) + ".hdb";
  data::BlockFileOptions fopts;
  fopts.rows_per_block = 1024;  // several pages even at smoke scale
  fopts.compression = comp;
  bench::Unwrap(dataset::PackTable(t, interface::MakeSumRanking(), path,
                                   fopts),
                "pack");

  const uint64_t data_bytes =
      static_cast<uint64_t>(t.num_rows()) *
      static_cast<uint64_t>(t.schema().num_attributes() + 1) * 8;
  uint64_t pool = data_bytes / 8;
  if (const char* env = std::getenv("HDSKY_BUFFER_POOL_BYTES")) {
    const uint64_t v = std::strtoull(env, nullptr, 10);
    if (v > 0 && v < pool) pool = v;
  }

  OocGroup group;
  group.mmap = MakeOocContext(t, path, static_cast<size_t>(pool),
                              data::ReadPathKind::kMmap);
  group.pread = MakeOocContext(t, path, static_cast<size_t>(pool),
                               data::ReadPathKind::kPread);
  ::unlink(path.c_str());  // both tables hold the file open

  return cache.emplace(key, std::move(group)).first->second;
}

const OocContext& Ooc(int64_t n, data::Compression comp,
                      data::ReadPathKind kind) {
  const OocGroup& group = OocFor(n, comp);
  return kind == data::ReadPathKind::kPread ? group.pread : group.mmap;
}

void SetOocCounters(benchmark::State& state, const OocContext& ctx) {
  state.counters["pool_bytes"] =
      static_cast<double>(ctx.table->pool()->budget_bytes());
  state.counters["page_bytes"] =
      static_cast<double>(ctx.table->file().page_bytes());
  state.counters["data_bytes"] = static_cast<double>(ctx.table->data_bytes());
  state.counters["exact_match"] = ctx.exact ? 1.0 : 0.0;
  state.counters["evictions"] =
      static_cast<double>(ctx.table->pool_stats().evictions);
}

void RunOocQueryBench(benchmark::State& state, const OocContext& ctx,
                      const interface::Query& q, bool cold) {
  interface::QueryResult r;
  if (!cold) {
    auto prime = ctx.iface->Execute(q, &r);  // fault the working set in
    benchmark::DoNotOptimize(prime);
  }
  const uint64_t bytes_before = ctx.table->pool_stats().bytes_read;
  for (auto _ : state) {
    if (cold) {
      state.PauseTiming();
      ctx.table->pool()->DropAll();
      state.ResumeTiming();
    }
    auto status = ctx.iface->Execute(q, &r);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
  SetOocCounters(state, ctx);
  const uint64_t bytes_after = ctx.table->pool_stats().bytes_read;
  state.counters["bytes_read_per_iter"] =
      state.iterations() > 0
          ? static_cast<double>(bytes_after - bytes_before) /
                static_cast<double>(state.iterations())
          : 0.0;
}

constexpr data::Compression kRaw = data::Compression::kOff;
constexpr data::Compression kComp = data::Compression::kAuto;
constexpr data::ReadPathKind kMmapPath = data::ReadPathKind::kMmap;
constexpr data::ReadPathKind kPreadPath = data::ReadPathKind::kPread;

void BM_OocBroadQueryCold(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kRaw, kMmapPath),
                   BroadQuery(), true);
}

void BM_OocBroadQueryColdComp(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kComp, kMmapPath),
                   BroadQuery(), true);
}

void BM_OocBroadQueryColdPread(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kRaw, kPreadPath),
                   BroadQuery(), true);
}

void BM_OocBroadQueryColdCompPread(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kComp, kPreadPath),
                   BroadQuery(), true);
}

void BM_OocBroadQueryWarm(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kRaw, kMmapPath),
                   BroadQuery(), false);
}

void BM_OocSelectiveQueryCold(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kRaw, kMmapPath),
                   SelectiveQuery(), true);
}

void BM_OocSelectiveQueryColdComp(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kComp, kMmapPath),
                   SelectiveQuery(), true);
}

void BM_OocSelectiveQueryColdPread(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kRaw, kPreadPath),
                   SelectiveQuery(), true);
}

void BM_OocSelectiveQueryColdCompPread(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kComp, kPreadPath),
                   SelectiveQuery(), true);
}

void BM_OocSelectiveQueryWarm(benchmark::State& state) {
  RunOocQueryBench(state, Ooc(state.range(0), kRaw, kMmapPath),
                   SelectiveQuery(), false);
}

void BM_OocMemBroadQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = MakeScanInterface(&t, kOocK);
  RunQueryBench(state, iface.get(), BroadQuery());
}

void BM_OocMemSelectiveQuery(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  auto iface = MakeScanInterface(&t, kOocK);
  RunQueryBench(state, iface.get(), SelectiveQuery());
}

void BM_KdIndexBuild(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  std::vector<int64_t> rank(static_cast<size_t>(t.num_rows()));
  std::iota(rank.begin(), rank.end(), 0);
  for (auto _ : state) {
    interface::KdIndex index(&t, rank);
    benchmark::DoNotOptimize(index.num_nodes());
  }
}

void BM_SkylineBNL(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::SkylineBNL(t);
    benchmark::DoNotOptimize(s.size());
  }
}

void BM_SkylineSFS(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::SkylineSFS(t);
    benchmark::DoNotOptimize(s.size());
  }
}

void BM_SkylineDnC(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::SkylineDnC(t);
    benchmark::DoNotOptimize(s.size());
  }
}

void BM_SkylineBBS(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  const skyline::RTree tree =
      bench::Unwrap(skyline::RTree::Build(&t), "rtree");
  for (auto _ : state) {
    auto s = skyline::SkylineBBS(tree);
    benchmark::DoNotOptimize(s->size());
  }
}

void BM_RTreeBuild(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto tree = skyline::RTree::Build(&t);
    benchmark::DoNotOptimize(tree->num_nodes());
  }
}

void BM_KSkyband(benchmark::State& state) {
  const data::Table& t = Data(state.range(0));
  for (auto _ : state) {
    auto s = skyline::KSkyband(t, 3);
    benchmark::DoNotOptimize(s.size());
  }
}

}  // namespace

BENCHMARK(BM_ExecuteBroadQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecuteBroadQueryNaive)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecuteSelectiveQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecuteSelectiveQueryNaive)->Arg(10000)->Arg(100000);
BENCHMARK(BM_ExecutePointQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocBroadQueryCold)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocBroadQueryColdComp)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocBroadQueryColdPread)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocBroadQueryColdCompPread)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocBroadQueryWarm)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocSelectiveQueryCold)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocSelectiveQueryColdComp)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocSelectiveQueryColdPread)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocSelectiveQueryColdCompPread)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocSelectiveQueryWarm)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocMemBroadQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_OocMemSelectiveQuery)->Arg(10000)->Arg(100000);
BENCHMARK(BM_KdIndexBuild)->Arg(10000)->Arg(100000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineBNL)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineSFS)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineDnC)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkylineBBS)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RTreeBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_KSkyband)->Arg(10000)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
