// Sky-band discovery cost (Section 7.2): query cost of the top-h band
// for h = 1, 2, 3 through RQ and PQ interfaces. h = 1 is plain skyline
// discovery; each extra level multiplies the work by roughly the band's
// growth (RQ re-runs discovery in every band tuple's domination
// subspace; PQ widens every column's take).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/skyband_discovery.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "skyline/skyband.h"

namespace {

using namespace hdsky;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("skyband_cost",
                             "interface,band,band_size,query_cost");
  return sink;
}

void BM_SkybandRq(benchmark::State& state) {
  const int band = static_cast<int>(state.range(0));
  dataset::SyntheticOptions o;
  o.num_tuples = bench::Scaled(2000);
  o.num_attributes = 3;
  o.domain_size = 100;
  o.distribution = dataset::Distribution::kAntiCorrelated;
  o.iface = data::InterfaceType::kRQ;
  o.seed = 3400;
  const data::Table t =
      bench::Unwrap(dataset::GenerateSynthetic(o), "data");
  int64_t cost = 0, size = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 5);
    core::SkybandOptions opts;
    opts.band = band;
    auto r = bench::Unwrap(core::RqDbSkyband(iface.get(), opts), "band");
    cost = r.query_cost;
    size = static_cast<int64_t>(r.skyline.size());
  }
  state.counters["band_size"] = static_cast<double>(size);
  state.counters["query_cost"] = static_cast<double>(cost);
  Sink().Row("RQ,%d,%lld,%lld", band, (long long)size, (long long)cost);
}

void BM_SkybandPq(benchmark::State& state) {
  const int band = static_cast<int>(state.range(0));
  dataset::SyntheticOptions o;
  o.num_tuples = bench::Scaled(2000);
  o.num_attributes = 3;
  o.domain_size = 10;
  o.distribution = dataset::Distribution::kAntiCorrelated;
  o.iface = data::InterfaceType::kPQ;
  o.seed = 3401;
  const data::Table t =
      bench::Unwrap(dataset::GenerateSynthetic(o), "data");
  int64_t cost = 0, size = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 5);
    core::SkybandOptions opts;
    opts.band = band;
    auto r = bench::Unwrap(core::PqDbSkyband(iface.get(), opts), "band");
    cost = r.query_cost;
    size = static_cast<int64_t>(r.skyline.size());
  }
  state.counters["band_size"] = static_cast<double>(size);
  state.counters["query_cost"] = static_cast<double>(cost);
  Sink().Row("PQ,%d,%lld,%lld", band, (long long)size, (long long)cost);
}

}  // namespace

BENCHMARK(BM_SkybandRq)
    ->DenseRange(1, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SkybandPq)
    ->DenseRange(1, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
