// Figure 19: MQ-DB-SKY query cost under two mixed-interface sweeps on
// the DOT dataset (50K tuples, k = 10):
//   (a) one PQ attribute, the number of RQ attributes varying 2..5;
//   (b) one RQ attribute, the number of PQ attributes varying 2..5.
//
// Expected shape: adding PQ attributes raises the cost far more sharply
// than adding RQ attributes — point predicates multiply the 2D-plane
// sweeps while range attributes only deepen the (cheap) RQ tree.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 50;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig19_mixed_vary_attrs",
                             "sweep,total_attrs,rq_attrs,pq_attrs,"
                             "skyline,mq_cost");
  return sink;
}

const data::Table& Dot() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(50000);
    o.seed = 1900;
    o.include_filtering = false;
    return bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
  }();
  return table;
}

// Range attributes (RQ) and point attributes (PQ) in a fixed order.
const int kRangeAttrs[] = {
    dataset::FlightsAttrs::kDepDelay, dataset::FlightsAttrs::kTaxiOut,
    dataset::FlightsAttrs::kTaxiIn,
    dataset::FlightsAttrs::kActualElapsed,
    dataset::FlightsAttrs::kArrivalDelay};
const int kPointAttrs[] = {
    dataset::FlightsAttrs::kDistanceGroup,
    dataset::FlightsAttrs::kAirTimeGroup,
    dataset::FlightsAttrs::kDelayGroup,
    dataset::FlightsAttrs::kTaxiOutGroup,
    dataset::FlightsAttrs::kArrDelayGroup};

void RunSweep(benchmark::State& state, int num_rq, int num_pq,
              const char* sweep) {
  std::vector<int> attrs;
  for (int i = 0; i < num_rq; ++i) attrs.push_back(kRangeAttrs[i]);
  for (int i = 0; i < num_pq; ++i) attrs.push_back(kPointAttrs[i]);
  const data::Table t = bench::Unwrap(Dot().Project(attrs), "project");
  const int64_t skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());

  int64_t cost = 0;
  for (auto _ : state) {
    auto iface =
        bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    auto r = bench::Unwrap(core::MqDbSky(iface.get()), "MqDbSky");
    cost = r.query_cost;
  }
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["mq_cost"] = static_cast<double>(cost);
  Sink().Row("%s,%d,%d,%d,%lld,%lld", sweep, num_rq + num_pq, num_rq,
             num_pq, (long long)skyline, (long long)cost);
}

void BM_Fig19_VaryRange(benchmark::State& state) {
  RunSweep(state, static_cast<int>(state.range(0)), 1, "vary_range");
}

void BM_Fig19_VaryPoint(benchmark::State& state) {
  RunSweep(state, 1, static_cast<int>(state.range(0)), "vary_point");
}

}  // namespace

BENCHMARK(BM_Fig19_VaryRange)
    ->DenseRange(2, 5, 1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig19_VaryPoint)
    ->DenseRange(2, 5, 1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
