// Microbenchmark of the federation subsystem: discovering the skyline of
// the union of K hidden databases with RunFederatedDiscovery versus K
// independent sequential discoveries (the no-coordination baseline the
// paper's single-site algorithms imply).
//
// The workload is three independently seeded Blue-Nile-shaped catalogs
// (the paper's diamond inventory, Section 7) — three sites listing the
// same kind of stock with different draws. Small scheduling rounds keep
// the shared prune snapshot fresh; that is where the cross-backend prune
// fires (a region corner sits at the domain minimum on every ranking
// attribute the RQ tree has not lower-bounded yet, so witnesses must be
// extreme there and the prune is sound but structurally rare — see
// docs/federation.md for why savings are a few percent, not an order of
// magnitude).
//
// Counters on BM_FederatedUnion (gated by scripts/compare_bench.py in
// the CI federation smoke):
//   sequential_queries   sum of the K standalone discovery costs
//   federated_queries    total paid queries of the federated run
//   pruned_queries       queries answered free from the shared index
//   prune_ratio          pruned / (paid + pruned)
//   queries_saved_ratio  1 - federated/sequential
//   skyline_match        1 iff the federated union skyline equals the
//                        merged-table ground truth exactly
//   skyline_size         distinct ranking-value combinations found
//
// BM_FederatedResume measures the durable-session path: a run stopped at
// a round barrier and resumed from the checkpoint with fresh backends.
// Its counters (also gated by scripts/compare_bench.py):
//   resumed_duplicate_queries  queries the resumed life re-issued that
//                              the first life had already paid for
//                              (must be 0 — resume replays nothing)
//   skyline_match              1 iff the resumed run still reproduces
//                              the merged-table ground truth

#include <memory>
#include <set>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "dataset/blue_nile.h"
#include "federation/federated_discovery.h"
#include "interface/ranking.h"
#include "recovery/federation_state.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kBackends = 3;
constexpr int kPageSize = 10;
/// Small rounds keep the frozen prune snapshot fresh; large rounds would
/// finish cheap sites before any cross-backend witness exists.
constexpr int64_t kRoundBudget = 32;

/// Three sites, same catalog shape, independent inventory draws.
const std::vector<data::Table>& BackendTables() {
  static const std::vector<data::Table> tables = [] {
    std::vector<data::Table> out;
    for (int b = 0; b < kBackends; ++b) {
      dataset::BlueNileOptions o;
      o.num_tuples = bench::Scaled(2000);
      o.seed = static_cast<uint64_t>(b + 1);
      out.push_back(bench::Unwrap(dataset::GenerateBlueNile(o), "site"));
    }
    return out;
  }();
  return tables;
}

/// Distinct ranking-value combinations of the merged-table skyline: the
/// ground truth a federated union run must reproduce exactly.
const std::set<data::Tuple>& GroundTruth() {
  static const std::set<data::Tuple> truth = [] {
    const std::vector<data::Table>& tables = BackendTables();
    data::Table merged(tables[0].schema());
    for (const data::Table& t : tables) {
      for (int64_t r = 0; r < t.num_rows(); ++r) {
        HDSKY_CHECK(merged.Append(t.GetTuple(r)).ok());
      }
    }
    const std::vector<int> attrs = merged.schema().ranking_attributes();
    std::set<data::Tuple> out;
    for (const data::TupleId id : skyline::SkylineSFS(merged)) {
      data::Tuple proj(attrs.size());
      for (size_t a = 0; a < attrs.size(); ++a) {
        proj[a] = merged.value(id, attrs[a]);
      }
      out.insert(std::move(proj));
    }
    return out;
  }();
  return truth;
}

int64_t SequentialCost() {
  static const int64_t cost = [] {
    int64_t total = 0;
    for (const data::Table& t : BackendTables()) {
      auto iface =
          bench::MakeInterface(&t, interface::MakeSumRanking(), kPageSize);
      auto r = bench::Unwrap(core::RqDbSky(iface.get()), "sequential rq");
      total += r.query_cost;
    }
    return total;
  }();
  return cost;
}

void BM_FederatedUnion(benchmark::State& state) {
  const std::vector<data::Table>& tables = BackendTables();
  const int64_t sequential = SequentialCost();

  federation::FederatedResult last;
  for (auto _ : state) {
    std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
    std::vector<interface::HiddenDatabase*> backends;
    for (const data::Table& t : tables) {
      ifaces.push_back(bench::MakeInterface(
          &t, interface::MakeSumRanking(), kPageSize));
      backends.push_back(ifaces.back().get());
    }
    federation::FederationOptions opts;
    opts.mode = federation::FederationOptions::Mode::kUnion;
    opts.round_budget = kRoundBudget;
    auto r = bench::Unwrap(
        federation::RunFederatedDiscovery(backends, opts), "federated");
    benchmark::DoNotOptimize(r);
    last = std::move(r);
  }

  std::set<data::Tuple> found;
  for (const federation::UnionGroup& g : last.skyline) {
    found.insert(g.rank_values);
  }
  const double paid = static_cast<double>(last.total_paid);
  const double pruned = static_cast<double>(last.total_pruned);
  state.counters["sequential_queries"] =
      static_cast<double>(sequential);
  state.counters["federated_queries"] = paid;
  state.counters["pruned_queries"] = pruned;
  state.counters["prune_ratio"] =
      paid + pruned > 0 ? pruned / (paid + pruned) : 0.0;
  state.counters["queries_saved_ratio"] =
      sequential > 0 ? 1.0 - paid / static_cast<double>(sequential) : 0.0;
  state.counters["skyline_match"] = found == GroundTruth() ? 1.0 : 0.0;
  state.counters["skyline_size"] = static_cast<double>(found.size());
}

/// A backend recording the signature of every query it actually serves
/// (pruned queries never reach it), so the resume bench can count
/// cross-life duplicates on the wire side of the pruning layer.
class RecordingBackend : public interface::HiddenDatabase {
 public:
  explicit RecordingBackend(interface::HiddenDatabase* inner)
      : inner_(inner) {}
  const data::Schema& schema() const override { return inner_->schema(); }
  int k() const override { return inner_->k(); }
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override {
    signatures_.push_back(q.Signature());
    return inner_->Execute(q);
  }
  const std::vector<std::string>& signatures() const { return signatures_; }

 private:
  interface::HiddenDatabase* inner_;
  std::vector<std::string> signatures_;
};

/// Durable-session path: the first life stops at a round barrier (the
/// same consistent snapshot hdsky_discover persists under --journal),
/// the second life resumes from that checkpoint against fresh backend
/// objects. The benchmark times both lives together; the counters prove
/// the resumed life re-issues none of the queries the first life paid
/// for and still lands on the exact merged-table skyline.
void BM_FederatedResume(benchmark::State& state) {
  const std::vector<data::Table>& tables = BackendTables();

  int64_t duplicates = 0;
  bool match = false;
  for (auto _ : state) {
    // First life: run a few rounds, keep the last barrier checkpoint.
    std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
    std::vector<std::unique_ptr<RecordingBackend>> first;
    std::vector<interface::HiddenDatabase*> backends;
    for (const data::Table& t : tables) {
      ifaces.push_back(bench::MakeInterface(
          &t, interface::MakeSumRanking(), kPageSize));
      first.push_back(
          std::make_unique<RecordingBackend>(ifaces.back().get()));
      backends.push_back(first.back().get());
    }
    federation::FederationOptions opts;
    opts.mode = federation::FederationOptions::Mode::kUnion;
    opts.round_budget = kRoundBudget;
    opts.max_rounds = 3;
    recovery::FederationSessionState barrier;
    bool captured = false;
    opts.on_round_checkpoint =
        [&](const recovery::FederationSessionState& s) {
          barrier = s;
          captured = true;
          return common::Status::OK();
        };
    bench::Unwrap(federation::RunFederatedDiscovery(backends, opts),
                  "interrupted run");
    HDSKY_CHECK(captured);

    // Second life: fresh interfaces, resumed from the checkpoint.
    std::vector<std::unique_ptr<interface::TopKInterface>> rifaces;
    std::vector<std::unique_ptr<RecordingBackend>> second;
    std::vector<interface::HiddenDatabase*> rbackends;
    for (const data::Table& t : tables) {
      rifaces.push_back(bench::MakeInterface(
          &t, interface::MakeSumRanking(), kPageSize));
      second.push_back(
          std::make_unique<RecordingBackend>(rifaces.back().get()));
      rbackends.push_back(second.back().get());
    }
    federation::FederationOptions ropts;
    ropts.mode = federation::FederationOptions::Mode::kUnion;
    ropts.round_budget = kRoundBudget;
    ropts.resume_state = &barrier;
    auto r = bench::Unwrap(
        federation::RunFederatedDiscovery(rbackends, ropts), "resumed run");
    benchmark::DoNotOptimize(r);

    duplicates = 0;
    for (int b = 0; b < kBackends; ++b) {
      const std::set<std::string> paid(first[b]->signatures().begin(),
                                       first[b]->signatures().end());
      for (const std::string& sig : second[b]->signatures()) {
        if (paid.count(sig)) ++duplicates;
      }
    }
    std::set<data::Tuple> found;
    for (const federation::UnionGroup& g : r.skyline) {
      found.insert(g.rank_values);
    }
    match = found == GroundTruth();
  }

  state.counters["resumed_duplicate_queries"] =
      static_cast<double>(duplicates);
  state.counters["skyline_match"] = match ? 1.0 : 0.0;
}

/// The same federated run at several worker counts: the round barriers
/// and frozen snapshots make the result thread-count independent, so
/// this measures pure coordination overhead.
void BM_FederatedUnionThreads(benchmark::State& state) {
  const std::vector<data::Table>& tables = BackendTables();
  int64_t paid = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
    std::vector<interface::HiddenDatabase*> backends;
    for (const data::Table& t : tables) {
      ifaces.push_back(bench::MakeInterface(
          &t, interface::MakeSumRanking(), kPageSize));
      backends.push_back(ifaces.back().get());
    }
    federation::FederationOptions opts;
    opts.mode = federation::FederationOptions::Mode::kUnion;
    opts.round_budget = kRoundBudget;
    opts.num_threads = static_cast<int>(state.range(0));
    auto r = bench::Unwrap(
        federation::RunFederatedDiscovery(backends, opts), "federated");
    paid = r.total_paid;
    benchmark::DoNotOptimize(r);
  }
  state.counters["federated_queries"] = static_cast<double>(paid);
}

BENCHMARK(BM_FederatedUnion)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FederatedResume)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FederatedUnionThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
