// Figure 13: query cost of complete skyline discovery, RQ-DB-SKY vs the
// crawling BASELINE, as the interface's k grows from 1 to 50 (DOT
// dataset, four RQ attributes).
//
// Expected shape: both benefit from larger k, but RQ-DB-SKY beats
// BASELINE by orders of magnitude at every k (paper: ~10^2 vs ~10^6 at
// k = 1, ~10^5 at k = 50 for BASELINE).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/baseline_crawler.h"
#include "core/rq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"

namespace {

using namespace hdsky;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig13_rq_vs_baseline_k",
                             "k,rq_cost,baseline_cost,skyline");
  return sink;
}

const data::Table& Dot() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(457013);
    o.include_derived_groups = false;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    return bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kTaxiIn,
                      dataset::FlightsAttrs::kActualElapsed}),
        "project");
  }();
  return table;
}

void BM_Fig13(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const data::Table& t = Dot();
  int64_t rq_cost = 0, base_cost = 0, skyline = 0;
  for (auto _ : state) {
    {
      auto iface =
          bench::MakeInterface(&t, interface::MakeSumRanking(), k);
      auto r = bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky");
      rq_cost = r.query_cost;
      skyline = static_cast<int64_t>(r.skyline.size());
    }
    {
      auto iface =
          bench::MakeInterface(&t, interface::MakeSumRanking(), k);
      auto r = bench::Unwrap(core::BaselineSkyline(iface.get()),
                             "BaselineSkyline");
      base_cost = r.query_cost;
    }
  }
  state.counters["rq_cost"] = static_cast<double>(rq_cost);
  state.counters["baseline_cost"] = static_cast<double>(base_cost);
  state.counters["skyline"] = static_cast<double>(skyline);
  Sink().Row("%d,%lld,%lld,%lld", k, (long long)rq_cost,
             (long long)base_cost, (long long)skyline);
}

}  // namespace

BENCHMARK(BM_Fig13)
    ->Arg(1)
    ->Arg(10)
    ->Arg(20)
    ->Arg(30)
    ->Arg(40)
    ->Arg(50)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
