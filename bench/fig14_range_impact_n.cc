// Figure 14: query cost of SQ-DB-SKY and RQ-DB-SKY (and the skyline
// size) as the database size grows from 50K to 400K uniform samples of
// the DOT dataset; four range attributes, k = 10.
//
// Expected shape: neither algorithm's cost depends much on n; both track
// the (slow-growing) number of skyline tuples, with RQ <= SQ throughout.
// The average-case model E(C_|S|) is reported alongside as the paper's
// "Average Cost" overlay.

#include <benchmark/benchmark.h>

#include "analysis/cost_model.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;

bench::CsvSink& Sink() {
  static bench::CsvSink sink(
      "fig14_range_impact_n",
      "n,skyline,sq_cost,rq_cost,avg_model");
  return sink;
}

const data::Table& DotFull() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(457013);
    o.include_derived_groups = false;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    return bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kTaxiIn,
                      dataset::FlightsAttrs::kActualElapsed}),
        "project");
  }();
  return table;
}

// Nested uniform samples: one fixed permutation of the full dataset,
// prefixes of which are the n-samples. This matches the paper's setup
// where larger samples contain smaller ones, making the reported |S|
// curve monotone rather than redrawn noise.
const std::vector<int64_t>& Permutation() {
  static const std::vector<int64_t> perm = [] {
    common::Rng rng(1400);
    return rng.Permutation(DotFull().num_rows());
  }();
  return perm;
}

void BM_Fig14(benchmark::State& state) {
  const int64_t n =
      std::min(bench::Scaled(state.range(0) * 1000), DotFull().num_rows());
  const std::vector<int64_t>& perm = Permutation();
  data::Table sample(DotFull().schema());
  sample.Reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    HDSKY_CHECK(sample.Append(DotFull().GetTuple(perm[static_cast<size_t>(i)]))
                    .ok());
  }
  const int64_t skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(sample).size());

  int64_t sq_cost = 0, rq_cost = 0;
  for (auto _ : state) {
    {
      auto iface =
          bench::MakeInterface(&sample, interface::MakeSumRanking(), kK);
      auto r = bench::Unwrap(core::SqDbSky(iface.get()), "SqDbSky");
      sq_cost = r.query_cost;
    }
    {
      auto iface =
          bench::MakeInterface(&sample, interface::MakeSumRanking(), kK);
      auto r = bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky");
      rq_cost = r.query_cost;
    }
  }
  const double model = analysis::ExpectedSqCost(4, skyline);
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["sq_cost"] = static_cast<double>(sq_cost);
  state.counters["rq_cost"] = static_cast<double>(rq_cost);
  state.counters["avg_model"] = model;
  Sink().Row("%lld,%lld,%lld,%lld,%.4g", (long long)n, (long long)skyline,
             (long long)sq_cost, (long long)rq_cost, model);
}

}  // namespace

// 50K to 400K in 50K steps (range arg in thousands).
BENCHMARK(BM_Fig14)
    ->DenseRange(50, 400, 50)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
