// Figure 14: query cost of SQ-DB-SKY and RQ-DB-SKY (and the skyline
// size) as the database size grows from 50K to 400K uniform samples of
// the DOT dataset; four range attributes, k = 10.
//
// Expected shape: neither algorithm's cost depends much on n; both track
// the (slow-growing) number of skyline tuples, with RQ <= SQ throughout.
// The average-case model E(C_|S|) is reported alongside as the paper's
// "Average Cost" overlay.
//
// Execution: the eight n-points are independent discovery trials, so
// they are computed once — fanned across HDSKY_THREADS workers — on
// first access; each benchmark instance then just reports its point.
// Results and CSV output are bit-identical at every thread count.

#include <benchmark/benchmark.h>

#include "analysis/cost_model.h"
#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;
constexpr int64_t kMinThousands = 50;
constexpr int64_t kMaxThousands = 400;
constexpr int64_t kStepThousands = 50;

bench::CsvSink& Sink() {
  static bench::CsvSink sink(
      "fig14_range_impact_n",
      "n,skyline,sq_cost,rq_cost,avg_model");
  return sink;
}

const data::Table& DotFull() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(457013);
    o.include_derived_groups = false;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    return bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kTaxiIn,
                      dataset::FlightsAttrs::kActualElapsed}),
        "project");
  }();
  return table;
}

// Nested uniform samples: one fixed permutation of the full dataset,
// prefixes of which are the n-samples. This matches the paper's setup
// where larger samples contain smaller ones, making the reported |S|
// curve monotone rather than redrawn noise.
const std::vector<int64_t>& Permutation() {
  static const std::vector<int64_t> perm = [] {
    common::Rng rng(1400);
    return rng.Permutation(DotFull().num_rows());
  }();
  return perm;
}

struct Point {
  int64_t n = 0;
  int64_t skyline = 0;
  int64_t sq_cost = 0;
  int64_t rq_cost = 0;
  double model = 0;
};

Point ComputePoint(int64_t thousands) {
  Point p;
  p.n = std::min(bench::Scaled(thousands * 1000), DotFull().num_rows());
  const std::vector<int64_t>& perm = Permutation();
  data::Table sample(DotFull().schema());
  sample.Reserve(p.n);
  for (int64_t i = 0; i < p.n; ++i) {
    HDSKY_CHECK(
        sample.Append(DotFull().GetTuple(perm[static_cast<size_t>(i)]))
            .ok());
  }
  p.skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(sample).size());
  {
    auto iface =
        bench::MakeInterface(&sample, interface::MakeSumRanking(), kK);
    p.sq_cost = bench::Unwrap(core::SqDbSky(iface.get()), "SqDbSky")
                    .query_cost;
  }
  {
    auto iface =
        bench::MakeInterface(&sample, interface::MakeSumRanking(), kK);
    p.rq_cost = bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky")
                    .query_cost;
  }
  p.model = analysis::ExpectedSqCost(4, p.skyline);
  return p;
}

// Sweep points in n order, computed in parallel on first access.
const std::vector<Point>& AllPoints() {
  static const std::vector<Point> points = [] {
    DotFull();      // materialize shared state before fanning out
    Permutation();  // (magic statics would serialize the workers)
    const int64_t count =
        (kMaxThousands - kMinThousands) / kStepThousands + 1;
    return bench::RunTrialsParallel(count, [](int64_t i) {
      return ComputePoint(kMinThousands + i * kStepThousands);
    });
  }();
  return points;
}

void BM_Fig14(benchmark::State& state) {
  const size_t index = static_cast<size_t>(
      (state.range(0) - kMinThousands) / kStepThousands);
  Point p;
  for (auto _ : state) {
    p = AllPoints()[index];
  }
  state.counters["skyline"] = static_cast<double>(p.skyline);
  state.counters["sq_cost"] = static_cast<double>(p.sq_cost);
  state.counters["rq_cost"] = static_cast<double>(p.rq_cost);
  state.counters["avg_model"] = p.model;
  Sink().Row("%lld,%lld,%lld,%lld,%.4g", (long long)p.n,
             (long long)p.skyline, (long long)p.sq_cost,
             (long long)p.rq_cost, p.model);
}

}  // namespace

// 50K to 400K in 50K steps (range arg in thousands).
BENCHMARK(BM_Fig14)
    ->DenseRange(kMinThousands, kMaxThousands, kStepThousands)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
