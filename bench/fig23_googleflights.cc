// Figure 23: the Google Flights live experiment — MQ-DB-SKY over 50
// random routes (mixed SQ/RQ interface, k = 1, ranking = price): average
// query cost as a function of skyline-discovery progress.
//
// Expected shape: 4-11 skyline flights per route, all discovered within
// the 50-queries/day free limit of the QPX API even at k = 1.

#include <algorithm>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mq_db_sky.h"
#include "dataset/google_flights.h"
#include "interface/ranking.h"

namespace {

using namespace hdsky;

constexpr int kRoutes = 50;

bench::CsvSink& Sink() {
  static bench::CsvSink sink(
      "fig23_googleflights",
      "skyline_index,avg_query_cost,routes_reaching");
  return sink;
}

void BM_Fig23(benchmark::State& state) {
  double max_cost = 0, total_cost = 0;
  double min_sky = 1e9, max_sky = 0;
  std::vector<std::vector<int64_t>> curves;
  for (auto _ : state) {
    curves.clear();
    for (int route = 0; route < kRoutes; ++route) {
      dataset::GoogleFlightsOptions o;
      // Route inventories vary like real city pairs do.
      o.num_flights = 80 + (route * 37) % 220;
      o.seed = 2300 + static_cast<uint64_t>(route);
      const data::Table t =
          bench::Unwrap(dataset::GenerateRoute(o), "route");
      auto iface = bench::MakeInterface(
          &t,
          interface::MakeLexicographicRanking(
              {dataset::GoogleFlightsAttrs::kPrice}),
          1);
      auto r = bench::Unwrap(core::MqDbSky(iface.get()), "MqDbSky");
      std::vector<int64_t> costs;
      for (const core::ProgressPoint& p : r.trace) {
        while (static_cast<int64_t>(costs.size()) <
               p.skyline_discovered) {
          costs.push_back(p.queries_issued);
        }
      }
      curves.push_back(std::move(costs));
      total_cost += static_cast<double>(r.query_cost);
      max_cost = std::max(max_cost, static_cast<double>(r.query_cost));
      min_sky = std::min(min_sky, static_cast<double>(r.skyline.size()));
      max_sky = std::max(max_sky, static_cast<double>(r.skyline.size()));
    }
  }
  // Average cumulative cost at each progress index, across the routes
  // that reach it.
  size_t longest = 0;
  for (const auto& c : curves) longest = std::max(longest, c.size());
  for (size_t i = 0; i < longest; ++i) {
    double sum = 0;
    int reaching = 0;
    for (const auto& c : curves) {
      if (i < c.size()) {
        sum += static_cast<double>(c[i]);
        ++reaching;
      }
    }
    Sink().Row("%zu,%.2f,%d", i + 1, sum / reaching, reaching);
  }
  // The paper-comparable number is the cost at which the LAST skyline
  // flight is confirmed (its Figure 23 y-axis tops out there); the
  // remaining queries only prove completeness.
  double total_last = 0, max_last = 0;
  for (const auto& c : curves) {
    if (c.empty()) continue;
    total_last += static_cast<double>(c.back());
    max_last = std::max(max_last, static_cast<double>(c.back()));
  }
  state.counters["avg_cost_per_route"] = total_cost / kRoutes;
  state.counters["max_cost_per_route"] = max_cost;
  state.counters["avg_cost_at_last_discovery"] = total_last / kRoutes;
  state.counters["max_cost_at_last_discovery"] = max_last;
  state.counters["min_skyline"] = min_sky;
  state.counters["max_skyline"] = max_sky;
  state.counters["discovery_under_qpx_free_limit"] =
      max_last <= 50.0 ? 1.0 : 0.0;
}

}  // namespace

BENCHMARK(BM_Fig23)->Iterations(1)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
