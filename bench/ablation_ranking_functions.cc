// Ablation: how the hidden database's ranking function shapes discovery
// cost (Section 3.2's discussion). On one fixed database, SQ-DB-SKY and
// RQ-DB-SKY run against four domination-consistent rankings:
//   sum / lexicographic — "reasonable" rankings real sites use;
//   layered-random      — the average-case model (uniform over the
//                         matching skyline);
//   adversarial         — a stateful heuristic approximating the
//                         worst-case ill-behaved ranking.
// Expected shape: reasonable rankings cost at or below the average-case
// model E(C_|S|); the adversarial ranking pushes SQ well above it while
// RQ stays flat (its mutual exclusivity caps revisits at min(|S|^m+1, n)).

#include <benchmark/benchmark.h>

#include "analysis/cost_model.h"
#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/small_domain.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("ablation_ranking_functions",
                             "ranking,skyline,sq_cost,rq_cost,avg_model");
  return sink;
}

const data::Table& Data() {
  static const data::Table table = [] {
    dataset::SmallDomainOptions o;
    o.num_tuples = bench::Scaled(2000);
    o.num_attributes = 4;
    o.domain_size = 16;
    o.iface = data::InterfaceType::kRQ;
    o.seed = 3100;
    return bench::Unwrap(dataset::GenerateWithSkylineSize(o, 30, 5),
                         "data");
  }();
  return table;
}

std::shared_ptr<interface::RankingPolicy> Ranking(int which) {
  switch (which) {
    case 0:
      return interface::MakeSumRanking();
    case 1:
      return interface::MakeLexicographicRanking({0});
    case 2:
      return interface::MakeLayeredRandomRanking(31);
    default:
      return interface::MakeAdversarialRanking(32);
  }
}

const char* Name(int which) {
  switch (which) {
    case 0:
      return "sum";
    case 1:
      return "lexicographic";
    case 2:
      return "layered_random";
    default:
      return "adversarial";
  }
}

struct Point {
  int64_t sq_cost = 0;
  int64_t rq_cost = 0;
};

Point ComputePoint(int which) {
  const data::Table& t = Data();
  Point p;
  {
    auto iface = bench::MakeInterface(&t, Ranking(which), 1);
    core::SqDbSkyOptions opts;
    opts.common.max_queries = 200000;
    p.sq_cost =
        bench::Unwrap(core::SqDbSky(iface.get(), opts), "sq").query_cost;
  }
  {
    auto iface = bench::MakeInterface(&t, Ranking(which), 1);
    p.rq_cost = bench::Unwrap(core::RqDbSky(iface.get()), "rq").query_cost;
  }
  return p;
}

// The four ranking trials are independent (each owns its interface), so
// they fan across HDSKY_THREADS workers on first access; results are
// identical at every thread count.
const std::vector<Point>& AllPoints() {
  static const std::vector<Point> points = [] {
    Data();  // materialize shared state before fanning out
    return bench::RunTrialsParallel(4, [](int64_t i) {
      return ComputePoint(static_cast<int>(i));
    });
  }();
  return points;
}

void BM_RankingAblation(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const data::Table& t = Data();
  const int64_t skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());
  Point p;
  for (auto _ : state) {
    p = AllPoints()[static_cast<size_t>(which)];
  }
  const double model = analysis::ExpectedSqCost(4, skyline);
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["sq_cost"] = static_cast<double>(p.sq_cost);
  state.counters["rq_cost"] = static_cast<double>(p.rq_cost);
  state.counters["avg_model"] = model;
  Sink().Row("%s,%lld,%lld,%lld,%.4g", Name(which), (long long)skyline,
             (long long)p.sq_cost, (long long)p.rq_cost, model);
}

}  // namespace

BENCHMARK(BM_RankingAblation)
    ->DenseRange(0, 3, 1)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
