// Microbenchmarks of end-to-end discovery wall-clock cost and of the
// SkylineCollector's dominance maintenance (classic google-benchmark).
//
// BM_DiscoveryRQ times a full fig13-style RQ-DB-SKY run — millions of
// simulator queries at paper scale — and reports queries/sec, the number
// that bounds how far the figure sweeps and hdsky_serve can be pushed.
// The collector benches isolate SkylineCollector::Observe against a
// linear-scan reference on small- and large-skyline observation streams;
// together with micro_substrate these feed BENCH_discovery.json /
// BENCH_substrate.json (see scripts/run_benches.sh and
// docs/performance.md).

#include <map>
#include <utility>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/discovery.h"
#include "core/rq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "skyline/dominance.h"

namespace {

using namespace hdsky;

const data::Table& Data(int64_t n, dataset::Distribution dist) {
  static std::map<std::pair<int64_t, int>, data::Table> cache;
  const auto key = std::make_pair(n, static_cast<int>(dist));
  auto it = cache.find(key);
  if (it == cache.end()) {
    dataset::SyntheticOptions o;
    o.num_tuples = n;
    o.num_attributes = 4;
    o.domain_size = 1000;
    o.distribution = dist;
    o.seed = 3500;
    it = cache
             .emplace(key,
                      bench::Unwrap(dataset::GenerateSynthetic(o), "data"))
             .first;
  }
  return it->second;
}

void BM_DiscoveryRQ(benchmark::State& state) {
  const data::Table& t =
      Data(bench::Scaled(state.range(0)), dataset::Distribution::kIndependent);
  int64_t query_cost = 0, skyline = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), 10);
    auto r = bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky");
    query_cost = r.query_cost;
    skyline = static_cast<int64_t>(r.skyline.size());
  }
  state.counters["query_cost"] = static_cast<double>(query_cost);
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["queries_per_sec"] = benchmark::Counter(
      static_cast<double>(query_cost) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.SetItemsProcessed(state.iterations() * query_cost);
}

/// The pre-index SkylineCollector::Observe: a linear scan over every
/// confirmed tuple per observation. Kept here as the differential
/// reference the CI perf-smoke job compares the indexed collector against.
class LinearCollector {
 public:
  explicit LinearCollector(std::vector<int> ranking_attrs)
      : ranking_attrs_(std::move(ranking_attrs)) {}

  bool Observe(const data::Tuple& t) {
    for (const data::Tuple& s : tuples_) {
      const skyline::DomRelation rel =
          skyline::Compare(s, t, ranking_attrs_);
      if (rel == skyline::DomRelation::kDominates ||
          rel == skyline::DomRelation::kEqual) {
        return false;
      }
    }
    tuples_.push_back(t);
    return true;
  }

  size_t size() const { return tuples_.size(); }

 private:
  std::vector<int> ranking_attrs_;
  std::vector<data::Tuple> tuples_;
};

void BM_CollectorObserveLinear(benchmark::State& state) {
  const data::Table& t = Data(bench::Scaled(state.range(0)),
                              dataset::Distribution::kAntiCorrelated);
  const int64_t n = t.num_rows();
  for (auto _ : state) {
    LinearCollector collector(t.schema().ranking_attributes());
    for (data::TupleId row = 0; row < n; ++row) {
      collector.Observe(t.GetTuple(row));
    }
    benchmark::DoNotOptimize(collector.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_CollectorObserveIndexed(benchmark::State& state) {
  const data::Table& t = Data(bench::Scaled(state.range(0)),
                              dataset::Distribution::kAntiCorrelated);
  const int64_t n = t.num_rows();
  for (auto _ : state) {
    core::SkylineCollector collector(t.schema().ranking_attributes());
    for (data::TupleId row = 0; row < n; ++row) {
      collector.Observe(row, t.GetTuple(row));
    }
    benchmark::DoNotOptimize(collector.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}

}  // namespace

BENCHMARK(BM_DiscoveryRQ)
    ->Arg(20000)
    ->Arg(100000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CollectorObserveLinear)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CollectorObserveIndexed)
    ->Arg(20000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
