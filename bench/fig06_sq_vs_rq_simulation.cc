// Figure 6: measured SQ-DB-SKY vs RQ-DB-SKY query cost as the number of
// skyline tuples grows, on 2,000-tuple small-domain databases whose
// attribute correlation is tuned to hit each |S| target; 4D (a) and
// 8D (b), k = 1, layered-random ranking (the Section 3.2 model).
//
// Expected shape: the two algorithms track each other at small |S|; as
// |S| grows the SQ tree revisits skyline tuples and its cost pulls away,
// while RQ's mutually exclusive R(q) queries keep the cost near-linear
// in |S|. SQ runs are capped (the paper's worst-case curves reach 10^10+
// query counts that no experiment can execute); a capped point reports
// the cap.
//
// Execution: each of the 20 (m, target) points generates its own
// database from its own seed, so the whole sweep fans across
// HDSKY_THREADS workers (see fig14 for the pattern); results are
// identical at every thread count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/small_domain.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int64_t kQueryCap = 30000;
const int kMs[] = {4, 8};
const int64_t kTargets[] = {5, 15, 25, 35, 45, 55, 65, 75, 85, 95};
constexpr int64_t kNumTargets =
    static_cast<int64_t>(sizeof(kTargets) / sizeof(kTargets[0]));

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig06_sq_vs_rq_simulation",
                             "m,target_skyline,actual_skyline,sq_cost,"
                             "rq_cost,sq_capped");
  return sink;
}

// One generated database per (m, target), shared between both algorithms
// within the point's trial.
data::Table TableFor(int m, int64_t target) {
  dataset::SmallDomainOptions o;
  o.num_tuples = bench::Scaled(2000);
  o.num_attributes = m;
  o.domain_size = m <= 4 ? 48 : 6;
  o.iface = data::InterfaceType::kRQ;
  o.seed = 600 + static_cast<uint64_t>(m) * 100 +
           static_cast<uint64_t>(target);
  return bench::Unwrap(
      dataset::GenerateWithSkylineSize(o, target,
                                       std::max<int64_t>(2, target / 10)),
      "GenerateWithSkylineSize");
}

struct Point {
  int64_t actual = 0;
  int64_t sq_cost = 0;
  int64_t rq_cost = 0;
  bool sq_capped = false;
};

Point ComputePoint(int m, int64_t target) {
  const data::Table t = TableFor(m, target);
  Point p;
  p.actual =
      static_cast<int64_t>(skyline::DistinctSkylineValues(t).size());
  {
    auto iface = bench::MakeInterface(
        &t, interface::MakeLayeredRandomRanking(4242), 1);
    core::SqDbSkyOptions opts;
    opts.common.max_queries = kQueryCap;
    auto r = bench::Unwrap(core::SqDbSky(iface.get(), opts), "SqDbSky");
    p.sq_cost = r.query_cost;
    p.sq_capped = !r.complete;
  }
  {
    auto iface = bench::MakeInterface(
        &t, interface::MakeLayeredRandomRanking(4242), 1);
    p.rq_cost =
        bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky").query_cost;
  }
  return p;
}

// Row-major over (m, target), matching the registration order.
const std::vector<Point>& AllPoints() {
  static const std::vector<Point> points = [] {
    const int64_t count =
        static_cast<int64_t>(sizeof(kMs) / sizeof(kMs[0])) * kNumTargets;
    return bench::RunTrialsParallel(count, [](int64_t i) {
      return ComputePoint(kMs[i / kNumTargets],
                          kTargets[i % kNumTargets]);
    });
  }();
  return points;
}

void BM_Fig06(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int64_t target = state.range(1);
  size_t index = 0;
  for (int64_t mi = 0; kMs[mi] != m; ++mi) index += kNumTargets;
  for (int64_t ti = 0; kTargets[ti] != target; ++ti) ++index;
  Point p;
  for (auto _ : state) {
    p = AllPoints()[index];
  }
  state.counters["skyline"] = static_cast<double>(p.actual);
  state.counters["sq_cost"] = static_cast<double>(p.sq_cost);
  state.counters["rq_cost"] = static_cast<double>(p.rq_cost);
  Sink().Row("%d,%lld,%lld,%lld,%lld,%d", m, (long long)target,
             (long long)p.actual, (long long)p.sq_cost,
             (long long)p.rq_cost, p.sq_capped ? 1 : 0);
}

}  // namespace

BENCHMARK(BM_Fig06)
    ->ArgsProduct({{4, 8}, {5, 15, 25, 35, 45, 55, 65, 75, 85, 95}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
