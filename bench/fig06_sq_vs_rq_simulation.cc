// Figure 6: measured SQ-DB-SKY vs RQ-DB-SKY query cost as the number of
// skyline tuples grows, on 2,000-tuple small-domain databases whose
// attribute correlation is tuned to hit each |S| target; 4D (a) and
// 8D (b), k = 1, layered-random ranking (the Section 3.2 model).
//
// Expected shape: the two algorithms track each other at small |S|; as
// |S| grows the SQ tree revisits skyline tuples and its cost pulls away,
// while RQ's mutually exclusive R(q) queries keep the cost near-linear
// in |S|. SQ runs are capped (the paper's worst-case curves reach 10^10+
// query counts that no experiment can execute); a capped point reports
// the cap.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/small_domain.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int64_t kQueryCap = 30000;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig06_sq_vs_rq_simulation",
                             "m,target_skyline,actual_skyline,sq_cost,"
                             "rq_cost,sq_capped");
  return sink;
}

// One generated database per (m, target), shared between both algorithms.
const data::Table& TableFor(int m, int64_t target) {
  static std::map<std::pair<int, int64_t>, data::Table> cache;
  auto it = cache.find({m, target});
  if (it == cache.end()) {
    dataset::SmallDomainOptions o;
    o.num_tuples = bench::Scaled(2000);
    o.num_attributes = m;
    o.domain_size = m <= 4 ? 48 : 6;
    o.iface = data::InterfaceType::kRQ;
    o.seed = 600 + static_cast<uint64_t>(m) * 100 +
             static_cast<uint64_t>(target);
    it = cache
             .emplace(std::make_pair(m, target),
                      bench::Unwrap(
                          dataset::GenerateWithSkylineSize(
                              o, target, std::max<int64_t>(2, target / 10)),
                          "GenerateWithSkylineSize"))
             .first;
  }
  return it->second;
}

void BM_Fig06(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int64_t target = state.range(1);
  const data::Table& t = TableFor(m, target);
  const int64_t actual =
      static_cast<int64_t>(skyline::DistinctSkylineValues(t).size());

  int64_t sq_cost = 0, rq_cost = 0;
  bool sq_capped = false;
  for (auto _ : state) {
    {
      auto iface = bench::MakeInterface(
          &t, interface::MakeLayeredRandomRanking(4242), 1);
      core::SqDbSkyOptions opts;
      opts.common.max_queries = kQueryCap;
      auto r = bench::Unwrap(core::SqDbSky(iface.get(), opts), "SqDbSky");
      sq_cost = r.query_cost;
      sq_capped = !r.complete;
    }
    {
      auto iface = bench::MakeInterface(
          &t, interface::MakeLayeredRandomRanking(4242), 1);
      auto r = bench::Unwrap(core::RqDbSky(iface.get()), "RqDbSky");
      rq_cost = r.query_cost;
    }
  }
  state.counters["skyline"] = static_cast<double>(actual);
  state.counters["sq_cost"] = static_cast<double>(sq_cost);
  state.counters["rq_cost"] = static_cast<double>(rq_cost);
  Sink().Row("%d,%lld,%lld,%lld,%lld,%d", m, (long long)target,
             (long long)actual, (long long)sq_cost, (long long)rq_cost,
             sq_capped ? 1 : 0);
}

}  // namespace

BENCHMARK(BM_Fig06)
    ->ArgsProduct({{4, 8}, {5, 15, 25, 35, 45, 55, 65, 75, 85, 95}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
