// Ablation: PQ-DB-SKY's plane-selection heuristic (Section 5.3: span the
// 2D subspaces on the two LARGEST-domain attributes, because the plane's
// domains cost additively while every other attribute's domain costs
// multiplicatively). The heuristic runs against the worst possible pair
// on schemas with increasingly skewed domain sizes.
//
// Expected shape: with uniform domains the choice hardly matters; as the
// skew grows, the forced small-domain plane multiplies the large domains
// into the subspace count and its cost blows past the heuristic's.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/math_util.h"
#include "core/pq_db_sky.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

bench::CsvSink& Sink() {
  static bench::CsvSink sink(
      "ablation_pq_plane_choice",
      "big_domain,heuristic_cost,worst_pair_cost,skyline");
  return sink;
}

data::Table MakeSkewed(int64_t big_domain, uint64_t seed) {
  // Two big-domain attributes, two small ones (domain 4). Each pair is
  // anti-correlated so the skyline is a genuine staircase (an occupied
  // all-best corner would make every plane choice trivially cheap).
  std::vector<data::AttributeSpec> attrs = {
      {"big0", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
       big_domain - 1},
      {"small0", data::AttributeKind::kRanking, data::InterfaceType::kPQ,
       0, 3},
      {"big1", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
       big_domain - 1},
      {"small1", data::AttributeKind::kRanking, data::InterfaceType::kPQ,
       0, 3}};
  data::Table t(
      bench::Unwrap(data::Schema::Create(std::move(attrs)), "schema"));
  common::Rng rng(seed);
  const int64_t n = bench::Scaled(3000);
  for (int64_t i = 0; i < n; ++i) {
    const double u = rng.UniformReal();
    const double v = rng.UniformReal();
    auto mix = [&](double good, int64_t domain) {
      const double x = 0.8 * good + 0.2 * rng.UniformReal();
      return common::Clamp(
          static_cast<int64_t>(x * static_cast<double>(domain)), 0,
          domain - 1);
    };
    HDSKY_CHECK(t.Append({mix(u, big_domain), mix(v, 4),
                          mix(1.0 - u, big_domain), mix(1.0 - v, 4)})
                    .ok());
  }
  return t;
}

void BM_PlaneChoice(benchmark::State& state) {
  const int64_t big = state.range(0);
  const data::Table t = MakeSkewed(big, 3300 + static_cast<uint64_t>(big));
  int64_t heuristic_cost = 0, worst_cost = 0, skyline = 0;
  for (auto _ : state) {
    {
      auto iface =
          bench::MakeInterface(&t, interface::MakeSumRanking(), 5);
      auto r = bench::Unwrap(core::PqDbSky(iface.get()), "heuristic");
      heuristic_cost = r.query_cost;
      skyline = static_cast<int64_t>(r.skyline.size());
    }
    {
      auto iface =
          bench::MakeInterface(&t, interface::MakeSumRanking(), 5);
      core::PqDbSkyOptions opts;
      opts.force_ax = 1;  // the two small-domain attributes as the plane
      opts.force_ay = 3;
      worst_cost = bench::Unwrap(core::PqDbSky(iface.get(), opts),
                                 "worst-pair")
                       .query_cost;
    }
  }
  state.counters["heuristic_cost"] = static_cast<double>(heuristic_cost);
  state.counters["worst_pair_cost"] = static_cast<double>(worst_cost);
  state.counters["skyline"] = static_cast<double>(skyline);
  Sink().Row("%lld,%lld,%lld,%lld", (long long)big,
             (long long)heuristic_cost, (long long)worst_cost,
             (long long)skyline);
}

}  // namespace

BENCHMARK(BM_PlaneChoice)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
