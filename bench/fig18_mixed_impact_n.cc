// Figure 18: MQ-DB-SKY query cost on a mixed interface (3 RQ + 2 PQ
// attributes of the DOT dataset) as the database size grows from 20K to
// 100K; k = 10.
//
// Expected shape: like the pure cases, the number of tuples has minimal
// impact on query cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/mq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 50;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig18_mixed_impact_n",
                             "n,skyline,mq_cost");
  return sink;
}

const data::Table& DotMixed() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(100000);
    o.seed = 1800;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    return bench::Unwrap(
        // The point attributes carry information the range attributes do
        // not (DistanceGroup/AirTimeGroup vs the delay-side ranges), so
        // phase 2 has genuine range-dominated-but-point-superior tuples
        // to recover.
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kActualElapsed,
                      dataset::FlightsAttrs::kDistanceGroup,
                      dataset::FlightsAttrs::kAirTimeGroup}),
        "project");
  }();
  return table;
}

void BM_Fig18(benchmark::State& state) {
  const int64_t n = bench::Scaled(state.range(0) * 1000);
  common::Rng rng(1800 + static_cast<uint64_t>(n));
  const data::Table t = bench::Unwrap(
      DotMixed().Sample(std::min(n, DotMixed().num_rows()), &rng),
      "sample");
  const int64_t skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());

  int64_t cost = 0;
  for (auto _ : state) {
    auto iface =
        bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    auto r = bench::Unwrap(core::MqDbSky(iface.get()), "MqDbSky");
    cost = r.query_cost;
  }
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["mq_cost"] = static_cast<double>(cost);
  Sink().Row("%lld,%lld,%lld", (long long)n, (long long)skyline,
             (long long)cost);
}

}  // namespace

BENCHMARK(BM_Fig18)
    ->DenseRange(20, 100, 20)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
