// Figure 4: worst-case vs average-case query cost of SQ-DB-SKY as the
// number of skyline tuples grows, for m = 4 (a) and m = 8 (b).
//
// Pure cost-model evaluation (Section 3.2): the worst-case bound
// m * |S|^{m+1} against the exact expected cost E(C_|S|) of the
// random-ranking model (recursion (4) / corrected closed form (5)).
// Expected shape: the average-case curve grows orders of magnitude
// slower; at |S| = 19 the gap is ~10^2.5 for m = 4 and ~10^7 for m = 8.

#include <benchmark/benchmark.h>

#include "analysis/cost_model.h"
#include "bench/bench_util.h"

namespace {

hdsky::bench::CsvSink& Sink() {
  static hdsky::bench::CsvSink sink("fig04_sq_cost_model",
                                    "m,skyline,avg_cost,avg_closed_form,"
                                    "avg_upper_bound,worst_case");
  return sink;
}

void BM_Fig04(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const int64_t s = state.range(1);
  double avg = 0, closed = 0, upper = 0, worst = 0;
  for (auto _ : state) {
    avg = hdsky::analysis::ExpectedSqCost(m, s);
    closed = hdsky::analysis::ExpectedSqCostClosedForm(m, s);
    upper = hdsky::analysis::AverageCaseUpperBound(m, s);
    worst = hdsky::analysis::WorstCaseSqBound(m, s);
    benchmark::DoNotOptimize(avg);
  }
  state.counters["avg_cost"] = avg;
  state.counters["avg_upper_bound"] = upper;
  state.counters["worst_case"] = worst;
  Sink().Row("%d,%lld,%.6g,%.6g,%.6g,%.6g", m, (long long)s, avg, closed,
             upper, worst);
}

}  // namespace

// The paper's x-axis: |S| = 1, 3, 5, ..., 19 for m = 4 and m = 8.
BENCHMARK(BM_Fig04)
    ->ArgsProduct({{4, 8}, {1, 3, 5, 7, 9, 11, 13, 15, 17, 19}})
    ->Iterations(1);

BENCHMARK_MAIN();
