// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it executes the
// experiment, reports the series through google-benchmark counters (so
// `./bench/<fig>` prints the rows), and appends machine-readable points
// to bench_out/<figure>.csv under the working directory.
//
// Scale control: HDSKY_SCALE (a float, default 1) multiplies dataset
// sizes, letting CI smoke-run the full suite quickly while `HDSKY_SCALE=1`
// reproduces the paper-scale numbers reported in EXPERIMENTS.md.
//
// Thread control: HDSKY_THREADS (default 1 = serial, 0 = all cores) fans
// the independent points of each figure sweep across a thread pool via
// RunTrialsParallel. Every trial owns its output slot and derives its
// randomness from its own index, so the results — and the CSV files —
// are bit-identical at every thread count.

#ifndef HDSKY_BENCH_BENCH_UTIL_H_
#define HDSKY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "interface/top_k_interface.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace hdsky {
namespace bench {

/// Dataset scale multiplier from $HDSKY_SCALE, clamped to (0, 1].
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("HDSKY_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return (v > 0.0 && v <= 1.0) ? v : 1.0;
  }();
  return scale;
}

inline int64_t Scaled(int64_t n) {
  const int64_t s = static_cast<int64_t>(static_cast<double>(n) * Scale());
  return s < 1 ? 1 : s;
}

/// Appends rows of one figure's series to <dir>/<name>.csv, where <dir>
/// is $HDSKY_CSV_DIR (default "bench_out").
class CsvSink {
 public:
  explicit CsvSink(const std::string& figure, const std::string& header) {
    const char* env = std::getenv("HDSKY_CSV_DIR");
    const std::string dir =
        (env != nullptr && env[0] != '\0') ? env : "bench_out";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    path_ = dir + "/" + figure + ".csv";
    out_.open(path_, std::ios::trunc);
    if (out_) out_ << header << "\n";
  }

  template <typename... Args>
  void Row(const char* fmt, Args... args) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_) return;
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out_ << buf << "\n";
    out_.flush();
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mu_;
};

/// Unwraps a Result in bench context (aborts with a message on failure —
/// benches have no meaningful error recovery).
template <typename T>
T Unwrap(common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

/// Worker threads for bench fan-out, from $HDSKY_THREADS (1 = serial).
inline int Threads() {
  static const int threads = runtime::EnvThreadCount();
  return threads;
}

/// Runs `num_trials` independent trials, fanning them across `threads`
/// workers, and returns their results in trial order. fn(i) must depend
/// only on its trial index i (fixed seeds derived from i, its own
/// interface instance, ...) and R must be default-constructible.
///
/// Determinism: trial i writes slot i and nothing else, so the returned
/// vector is identical — element for element — whether threads is 1, 4,
/// or 8. The figure benches lean on this to keep their CSVs byte-stable
/// under HDSKY_THREADS.
template <typename Fn,
          typename R = std::invoke_result_t<Fn&, int64_t>>
std::vector<R> RunTrialsParallel(int64_t num_trials, Fn&& fn,
                                 int threads = -1) {
  if (threads < 0) threads = Threads();
  std::vector<R> results(static_cast<size_t>(num_trials));
  runtime::ParallelFor(threads, 0, num_trials, [&](int64_t i) {
    results[static_cast<size_t>(i)] = fn(i);
  });
  return results;
}

inline std::unique_ptr<interface::TopKInterface> MakeInterface(
    const data::Table* table,
    std::shared_ptr<interface::RankingPolicy> ranking, int k,
    int64_t budget = 0) {
  interface::TopKOptions opts;
  opts.k = k;
  opts.query_budget = budget;
  return Unwrap(
      interface::TopKInterface::Create(table, std::move(ranking), opts),
      "TopKInterface::Create");
}

}  // namespace bench
}  // namespace hdsky

#endif  // HDSKY_BENCH_BENCH_UTIL_H_
