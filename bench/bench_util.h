// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary reproduces one figure of the paper: it executes the
// experiment, reports the series through google-benchmark counters (so
// `./bench/<fig>` prints the rows), and appends machine-readable points
// to bench_out/<figure>.csv under the working directory.
//
// Scale control: HDSKY_SCALE (a float, default 1) multiplies dataset
// sizes, letting CI smoke-run the full suite quickly while `HDSKY_SCALE=1`
// reproduces the paper-scale numbers reported in EXPERIMENTS.md.

#ifndef HDSKY_BENCH_BENCH_UTIL_H_
#define HDSKY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>

#include "common/logging.h"
#include "interface/top_k_interface.h"

namespace hdsky {
namespace bench {

/// Dataset scale multiplier from $HDSKY_SCALE, clamped to (0, 1].
inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("HDSKY_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return (v > 0.0 && v <= 1.0) ? v : 1.0;
  }();
  return scale;
}

inline int64_t Scaled(int64_t n) {
  const int64_t s = static_cast<int64_t>(static_cast<double>(n) * Scale());
  return s < 1 ? 1 : s;
}

/// Appends rows of one figure's series to bench_out/<name>.csv.
class CsvSink {
 public:
  explicit CsvSink(const std::string& figure, const std::string& header) {
    std::error_code ec;
    std::filesystem::create_directories("bench_out", ec);
    path_ = "bench_out/" + figure + ".csv";
    out_.open(path_, std::ios::trunc);
    if (out_) out_ << header << "\n";
  }

  template <typename... Args>
  void Row(const char* fmt, Args... args) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!out_) return;
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    out_ << buf << "\n";
    out_.flush();
  }

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::ofstream out_;
  std::mutex mu_;
};

/// Unwraps a Result in bench context (aborts with a message on failure —
/// benches have no meaningful error recovery).
template <typename T>
T Unwrap(common::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "bench: %s failed: %s\n", what,
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

inline std::unique_ptr<interface::TopKInterface> MakeInterface(
    const data::Table* table,
    std::shared_ptr<interface::RankingPolicy> ranking, int k,
    int64_t budget = 0) {
  interface::TopKOptions opts;
  opts.k = k;
  opts.query_budget = budget;
  return Unwrap(
      interface::TopKInterface::Create(table, std::move(ranking), opts),
      "TopKInterface::Create");
}

}  // namespace bench
}  // namespace hdsky

#endif  // HDSKY_BENCH_BENCH_UTIL_H_
