// Microbenchmarks of the network service layer (wall-clock): per-query
// latency of Execute() in-process vs over a loopback socket, the same
// with the concurrent cache stacked on top of the remote client (warm
// hits never touch the wire), and a full RQ-DB-SKY discovery run both
// ways. These quantify the transport overhead, not the paper's
// query-cost metric — loopback equivalence tests already pin query
// counts to be identical.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/concurrent_caching_database.h"
#include "interface/ranking.h"
#include "service/remote_database.h"
#include "service/server.h"

namespace {

using namespace hdsky;

const data::Table& Data() {
  static const data::Table table = [] {
    dataset::SyntheticOptions o;
    o.num_tuples = 5000;
    o.num_attributes = 4;
    o.domain_size = 1000;
    o.iface = data::InterfaceType::kRQ;
    o.seed = 3500;
    return bench::Unwrap(dataset::GenerateSynthetic(o), "data");
  }();
  return table;
}

interface::Query BroadQuery() {
  interface::Query q(4);
  q.AddAtMost(0, 900);
  return q;
}

/// Server + connected client, torn down when the fixture dies.
struct Loopback {
  std::unique_ptr<interface::TopKInterface> backend;
  std::unique_ptr<service::DatabaseServer> server;
  std::unique_ptr<service::RemoteHiddenDatabase> remote;

  Loopback() {
    backend =
        bench::MakeInterface(&Data(), interface::MakeSumRanking(), 10);
    server = bench::Unwrap(
        service::DatabaseServer::Start(backend.get(), {}), "serve");
    remote = bench::Unwrap(service::RemoteHiddenDatabase::Connect(
                               "127.0.0.1", server->port(), {}),
                           "connect");
  }
};

void BM_ExecuteInProcess(benchmark::State& state) {
  auto iface = bench::MakeInterface(&Data(), interface::MakeSumRanking(),
                                    10);
  const interface::Query q = BroadQuery();
  for (auto _ : state) {
    auto r = iface->Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ExecuteOverLoopback(benchmark::State& state) {
  Loopback net;
  const interface::Query q = BroadQuery();
  for (auto _ : state) {
    auto r = net.remote->Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ExecuteCachedRemoteWarm(benchmark::State& state) {
  Loopback net;
  interface::ConcurrentCachingDatabase cached(net.remote.get());
  const interface::Query q = BroadQuery();
  auto warm = cached.Execute(q);  // one wire round trip; then all hits
  benchmark::DoNotOptimize(warm);
  for (auto _ : state) {
    auto r = cached.Execute(q);
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_RqDiscoveryInProcess(benchmark::State& state) {
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&Data(),
                                      interface::MakeSumRanking(), 10);
    auto r = core::RqDbSky(iface.get());
    benchmark::DoNotOptimize(r);
  }
}

void BM_RqDiscoveryOverLoopback(benchmark::State& state) {
  for (auto _ : state) {
    Loopback net;
    auto r = core::RqDbSky(net.remote.get());
    benchmark::DoNotOptimize(r);
  }
}

BENCHMARK(BM_ExecuteInProcess);
BENCHMARK(BM_ExecuteOverLoopback);
BENCHMARK(BM_ExecuteCachedRemoteWarm);
BENCHMARK(BM_RqDiscoveryInProcess)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RqDiscoveryOverLoopback)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
