// Figure 21: the anytime property of PQ-DB-SKY — query cost as a
// function of skyline-discovery progress (DOT dataset, 100K tuples, 4
// point attributes, k = 10).
//
// Expected shape: the whole skyline is discovered within a few hundred
// queries; occasional plateaus appear where queries are "wasted"
// sweeping planes that hold no skyline tuple (the paper's peak between
// its 8th and 9th tuples).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/pq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig21_anytime_pq",
                             "skyline_index,query_cost");
  return sink;
}

void BM_Fig21(benchmark::State& state) {
  dataset::FlightsOptions o;
  o.num_tuples = bench::Scaled(100000);
  o.seed = 2100;
  o.include_filtering = false;
  data::Table full =
      bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
  const data::Table t = bench::Unwrap(
      full.Project({dataset::FlightsAttrs::kDistanceGroup,
                    dataset::FlightsAttrs::kAirTimeGroup,
                    dataset::FlightsAttrs::kDelayGroup,
                    dataset::FlightsAttrs::kTaxiOutGroup}),
      "project");

  int64_t cost = 0, skyline = 0;
  for (auto _ : state) {
    auto iface =
        bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    auto r = bench::Unwrap(core::PqDbSky(iface.get()), "PqDbSky");
    cost = r.query_cost;
    skyline = static_cast<int64_t>(r.skyline.size());
    std::vector<int64_t> costs;
    for (const core::ProgressPoint& p : r.trace) {
      while (static_cast<int64_t>(costs.size()) < p.skyline_discovered) {
        costs.push_back(p.queries_issued);
      }
    }
    for (size_t i = 0; i < costs.size(); ++i) {
      Sink().Row("%zu,%lld", i + 1, (long long)costs[i]);
    }
  }
  state.counters["total_cost"] = static_cast<double>(cost);
  state.counters["skyline"] = static_cast<double>(skyline);
}

}  // namespace

BENCHMARK(BM_Fig21)->Iterations(1)->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
