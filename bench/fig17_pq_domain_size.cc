// Figure 17: PQ-DB-SKY query cost as the point-attribute domain size
// grows from 5 to 15 values (100K tuples, 4 PQ attributes, k = 10).
//
// Protocol per the paper: for each domain size v the base DOT attributes
// are re-discretized into v groups and 100K tuples sampled. Expected
// shape: cost rises with the domain size but far slower than the v^m
// growth of the value space — the scalability argument of Section 5.
//
// Execution: the eleven domain-size points run as one parallel sweep
// under HDSKY_THREADS (see fig14 for the pattern); results are identical
// at every thread count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/pq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;
constexpr int64_t kMinDomain = 5;
constexpr int64_t kMaxDomain = 15;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig17_pq_domain_size",
                             "domain,skyline,pq_cost,value_space");
  return sink;
}

// Base (continuous-ish) attributes to discretize.
const data::Table& DotBase() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(100000);
    o.seed = 1700;
    o.include_derived_groups = false;
    o.include_filtering = false;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    // AirTime (shorter preferred) and Distance (longer preferred,
    // inverted) keep the group skyline non-trivial at every
    // discretization, like the real DOT groups.
    return bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kAirTime,
                      dataset::FlightsAttrs::kDistance}),
        "project");
  }();
  return table;
}

// Discretizes every attribute into v equi-width groups over its domain.
data::Table Discretize(const data::Table& base, int64_t v) {
  std::vector<data::AttributeSpec> attrs;
  for (int a = 0; a < base.schema().num_attributes(); ++a) {
    data::AttributeSpec spec = base.schema().attribute(a);
    spec.iface = data::InterfaceType::kPQ;
    spec.domain_min = 0;
    spec.domain_max = v - 1;
    attrs.push_back(std::move(spec));
  }
  data::Table out(
      bench::Unwrap(data::Schema::Create(std::move(attrs)), "schema"));
  out.Reserve(base.num_rows());
  for (data::TupleId r = 0; r < base.num_rows(); ++r) {
    data::Tuple t(static_cast<size_t>(base.schema().num_attributes()));
    for (int a = 0; a < base.schema().num_attributes(); ++a) {
      const auto& spec = base.schema().attribute(a);
      const int64_t span = spec.DomainSize();
      const int64_t g =
          (base.value(r, a) - spec.domain_min) * v / span;
      t[static_cast<size_t>(a)] = std::min<int64_t>(g, v - 1);
    }
    HDSKY_CHECK(out.Append(t).ok());
  }
  return out;
}

struct Point {
  int64_t skyline = 0;
  int64_t cost = 0;
};

Point ComputePoint(int64_t v) {
  const data::Table t = Discretize(DotBase(), v);
  Point p;
  p.skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());
  auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
  p.cost = bench::Unwrap(core::PqDbSky(iface.get()), "PqDbSky").query_cost;
  return p;
}

const std::vector<Point>& AllPoints() {
  static const std::vector<Point> points = [] {
    DotBase();  // materialize shared state before fanning out
    return bench::RunTrialsParallel(
        kMaxDomain - kMinDomain + 1,
        [](int64_t i) { return ComputePoint(kMinDomain + i); });
  }();
  return points;
}

void BM_Fig17(benchmark::State& state) {
  const int64_t v = state.range(0);
  Point p;
  for (auto _ : state) {
    p = AllPoints()[static_cast<size_t>(v - kMinDomain)];
  }
  const double value_space = std::pow(static_cast<double>(v), 4.0);
  state.counters["skyline"] = static_cast<double>(p.skyline);
  state.counters["pq_cost"] = static_cast<double>(p.cost);
  state.counters["value_space"] = value_space;
  Sink().Row("%lld,%lld,%lld,%.0f", (long long)v, (long long)p.skyline,
             (long long)p.cost, value_space);
}

}  // namespace

BENCHMARK(BM_Fig17)
    ->DenseRange(kMinDomain, kMaxDomain, 1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
