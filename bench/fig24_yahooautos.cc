// Figure 24: the Yahoo! Autos live experiment — MQ-DB-SKY vs BASELINE
// on the (simulated) used-car listings (125,149 cars; Price, Mileage,
// Year all RQ; k = 50; ranking = price low-to-high; BASELINE cut off at
// 10,000 queries).
//
// Expected shape: MQ-DB-SKY discovers the full skyline (paper: 1,601
// tuples at < 2 queries per tuple); BASELINE exhausts its cut-off with
// the crawl unfinished.

#include <algorithm>
#include <set>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/baseline_crawler.h"
#include "core/mq_db_sky.h"
#include "dataset/yahoo_autos.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 50;
constexpr int64_t kBaselineCutoff = 10000;

bench::CsvSink& Sink() {
  static bench::CsvSink sink("fig24_yahooautos",
                             "algorithm,skyline_index,query_cost");
  return sink;
}

const data::Table& Autos() {
  static const data::Table table = [] {
    dataset::YahooAutosOptions o;
    o.num_tuples = bench::Scaled(125149);
    return bench::Unwrap(dataset::GenerateYahooAutos(o), "yahoo_autos");
  }();
  return table;
}

std::shared_ptr<interface::RankingPolicy> PriceRanking() {
  return interface::MakeLexicographicRanking(
      {dataset::YahooAutosAttrs::kPrice});
}

void BM_Fig24_MQ(benchmark::State& state) {
  const data::Table& t = Autos();
  int64_t cost = 0, skyline = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, PriceRanking(), kK);
    auto r = bench::Unwrap(core::MqDbSky(iface.get()), "MqDbSky");
    cost = r.query_cost;
    skyline = static_cast<int64_t>(r.skyline.size());
    std::vector<int64_t> costs;
    for (const core::ProgressPoint& p : r.trace) {
      while (static_cast<int64_t>(costs.size()) < p.skyline_discovered) {
        costs.push_back(p.queries_issued);
      }
    }
    const size_t step = std::max<size_t>(1, costs.size() / 200);
    for (size_t i = 0; i < costs.size(); i += step) {
      Sink().Row("MQ-DB-SKY,%zu,%lld", i + 1, (long long)costs[i]);
    }
  }
  state.counters["total_cost"] = static_cast<double>(cost);
  state.counters["skyline"] = static_cast<double>(skyline);
  state.counters["cost_per_skyline"] =
      skyline ? static_cast<double>(cost) / static_cast<double>(skyline)
              : 0.0;
}

void BM_Fig24_Baseline(benchmark::State& state) {
  const data::Table& t = Autos();
  int64_t found = 0;
  for (auto _ : state) {
    auto iface = bench::MakeInterface(&t, PriceRanking(), kK);
    core::CrawlOptions opts;
    opts.common.max_queries = kBaselineCutoff;
    auto crawl = bench::Unwrap(core::CrawlDatabase(iface.get(), opts),
                               "CrawlDatabase");
    const std::set<data::TupleId> truth = [&] {
      const auto sky = skyline::SkylineSFS(t);
      return std::set<data::TupleId>(sky.begin(), sky.end());
    }();
    std::vector<int64_t> arrivals;
    for (size_t i = 0; i < crawl.ids.size(); ++i) {
      if (truth.count(crawl.ids[i])) arrivals.push_back(crawl.found_at[i]);
    }
    std::sort(arrivals.begin(), arrivals.end());
    const size_t step = std::max<size_t>(1, arrivals.size() / 200);
    for (size_t i = 0; i < arrivals.size(); i += step) {
      Sink().Row("BASELINE,%zu,%lld", i + 1, (long long)arrivals[i]);
    }
    found = static_cast<int64_t>(arrivals.size());
  }
  state.counters["skyline_found_at_cutoff"] = static_cast<double>(found);
  state.counters["cutoff"] = static_cast<double>(kBaselineCutoff);
}

}  // namespace

BENCHMARK(BM_Fig24_MQ)->Iterations(1)->Unit(benchmark::kSecond);
BENCHMARK(BM_Fig24_Baseline)->Iterations(1)->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
