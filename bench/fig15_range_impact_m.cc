// Figure 15: query cost of SQ-DB-SKY and RQ-DB-SKY as the number of
// ranking attributes grows from 2 to 10 (DOT dataset, 100K tuples,
// k = 10), with the average-case model E(C_|S|) overlay.
//
// Expected shape: cost climbs steeply with m — largely because the
// skyline itself explodes with dimensionality — with RQ consistently
// below SQ and both far below the worst-case bounds.
//
// Execution: the nine m-points run as one parallel sweep under
// HDSKY_THREADS (see fig14 for the pattern); results are identical at
// every thread count.

#include <benchmark/benchmark.h>

#include "analysis/cost_model.h"
#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/flights_on_time.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int kK = 10;
constexpr int64_t kQueryCap = 150000;
constexpr int kMinM = 2;
constexpr int kMaxM = 10;

bench::CsvSink& Sink() {
  static bench::CsvSink sink(
      "fig15_range_impact_m",
      "m,skyline,sq_cost,sq_capped,rq_cost,rq_capped,avg_model");
  return sink;
}

// All 13 ranking attributes recast as RQ, in a fixed order that starts
// with the paper's primary range attributes.
const data::Table& DotAllRq() {
  static const data::Table table = [] {
    dataset::FlightsOptions o;
    o.num_tuples = bench::Scaled(100000);
    o.include_filtering = false;
    o.seed = 1500;
    data::Table full =
        bench::Unwrap(dataset::GenerateFlightsOnTime(o), "flights");
    data::Table ordered = bench::Unwrap(
        full.Project({dataset::FlightsAttrs::kDepDelay,
                      dataset::FlightsAttrs::kTaxiOut,
                      dataset::FlightsAttrs::kTaxiIn,
                      dataset::FlightsAttrs::kActualElapsed,
                      dataset::FlightsAttrs::kAirTime,
                      dataset::FlightsAttrs::kArrivalDelay,
                      dataset::FlightsAttrs::kDistance,
                      dataset::FlightsAttrs::kDelayGroup,
                      dataset::FlightsAttrs::kDistanceGroup,
                      dataset::FlightsAttrs::kTaxiOutGroup}),
        "project");
    for (int a = 0; a < ordered.schema().num_attributes(); ++a) {
      ordered = bench::Unwrap(
          ordered.WithInterface(a, data::InterfaceType::kRQ), "recast");
    }
    return ordered;
  }();
  return table;
}

struct Point {
  int64_t skyline = 0;
  int64_t sq_cost = 0;
  int64_t rq_cost = 0;
  bool sq_capped = false;
  bool rq_capped = false;
  double model = 0;
};

Point ComputePoint(int m) {
  std::vector<int> attrs(static_cast<size_t>(m));
  for (int i = 0; i < m; ++i) attrs[static_cast<size_t>(i)] = i;
  const data::Table t =
      bench::Unwrap(DotAllRq().Project(attrs), "project-m");
  Point p;
  p.skyline = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());
  {
    auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    core::SqDbSkyOptions opts;
    opts.common.max_queries = kQueryCap;
    auto r = bench::Unwrap(core::SqDbSky(iface.get(), opts), "SqDbSky");
    p.sq_cost = r.query_cost;
    p.sq_capped = !r.complete;
  }
  {
    auto iface = bench::MakeInterface(&t, interface::MakeSumRanking(), kK);
    core::RqDbSkyOptions opts;
    opts.common.max_queries = kQueryCap;
    auto r = bench::Unwrap(core::RqDbSky(iface.get(), opts), "RqDbSky");
    p.rq_cost = r.query_cost;
    p.rq_capped = !r.complete;
  }
  p.model = analysis::ExpectedSqCost(m, p.skyline);
  return p;
}

const std::vector<Point>& AllPoints() {
  static const std::vector<Point> points = [] {
    DotAllRq();  // materialize shared state before fanning out
    return bench::RunTrialsParallel(kMaxM - kMinM + 1, [](int64_t i) {
      return ComputePoint(kMinM + static_cast<int>(i));
    });
  }();
  return points;
}

void BM_Fig15(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  Point p;
  for (auto _ : state) {
    p = AllPoints()[static_cast<size_t>(m - kMinM)];
  }
  state.counters["skyline"] = static_cast<double>(p.skyline);
  state.counters["sq_cost"] = static_cast<double>(p.sq_cost);
  state.counters["rq_cost"] = static_cast<double>(p.rq_cost);
  state.counters["avg_model"] = p.model;
  Sink().Row("%d,%lld,%lld,%d,%lld,%d,%.4g", m, (long long)p.skyline,
             (long long)p.sq_cost, p.sq_capped ? 1 : 0,
             (long long)p.rq_cost, p.rq_capped ? 1 : 0, p.model);
}

}  // namespace

BENCHMARK(BM_Fig15)
    ->DenseRange(kMinM, kMaxM, 1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

BENCHMARK_MAIN();
