// Microbenchmark of the event-driven service under multi-session load:
// an in-process EventDrivenServer is driven by the LoadDriver (the same
// engine behind tools/hdsky_loadgen) at several concurrency levels, and
// the interesting service metrics — p50/p99 query latency, sustained
// sessions, throughput, and the cross-session queries-deduped ratio —
// are exported as counters so scripts/compare_bench.py can gate them
// against the pinned baseline (BENCH_service.json).
//
// The with-cache/without-cache pair quantifies what the shared
// single-flight cache buys: identical workloads, identical sessions,
// backend executions collapsing from sessions*queries to ~queries.

#include <memory>

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "service/event_server.h"
#include "service/load_driver.h"

namespace {

using namespace hdsky;

const data::Table& Data() {
  static const data::Table table = [] {
    dataset::SyntheticOptions o;
    o.num_tuples = 20000;
    o.num_attributes = 3;
    o.domain_size = 10000;
    o.iface = data::InterfaceType::kRQ;
    o.seed = 42;
    return bench::Unwrap(dataset::GenerateSynthetic(o), "data");
  }();
  return table;
}

/// One full load run: start a fresh server, drive `sessions` concurrent
/// pipelined sessions through the shared workload, tear down.
service::LoadReport RunOnce(int sessions, int queries, bool shared_cache) {
  auto backend =
      bench::MakeInterface(&Data(), interface::MakeSumRanking(), 10);
  service::EventDrivenServer::Options opts;
  opts.max_connections = sessions + 16;
  opts.shared_cache = shared_cache;
  auto server = bench::Unwrap(
      service::EventDrivenServer::Start(backend.get(), opts), "serve");

  service::LoadOptions load;
  load.port = server->port();
  load.sessions = sessions;
  load.queries_per_session = queries;
  load.pipeline_depth = 8;
  auto report = bench::Unwrap(service::RunLoad(load), "load");
  server->Stop();
  return report;
}

void ReportCounters(benchmark::State& state,
                    const service::LoadReport& report) {
  state.counters["sessions"] =
      static_cast<double>(report.sessions_completed);
  state.counters["qps"] = report.qps;
  state.counters["p50_us"] = report.latency_p50_us;
  state.counters["p99_us"] = report.latency_p99_us;
  state.counters["dedup_ratio"] = report.dedup_ratio;
  state.counters["busy_retries"] =
      static_cast<double>(report.busy_retries);
  if (!report.complete) state.SkipWithError("load run incomplete");
}

void BM_ServiceLoad(benchmark::State& state) {
  const int sessions =
      static_cast<int>(bench::Scaled(state.range(0)));
  const int queries = static_cast<int>(bench::Scaled(32));
  service::LoadReport report;
  for (auto _ : state) {
    report = RunOnce(sessions, queries, /*shared_cache=*/true);
  }
  ReportCounters(state, report);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sessions) * queries);
}
BENCHMARK(BM_ServiceLoad)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void BM_ServiceLoadNoCache(benchmark::State& state) {
  const int sessions =
      static_cast<int>(bench::Scaled(state.range(0)));
  const int queries = static_cast<int>(bench::Scaled(32));
  service::LoadReport report;
  for (auto _ : state) {
    report = RunOnce(sessions, queries, /*shared_cache=*/false);
  }
  ReportCounters(state, report);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(sessions) * queries);
}
BENCHMARK(BM_ServiceLoadNoCache)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
