// Ablation: the value of RQ-DB-SKY's early termination (the R(q)
// mutually-exclusive rewrite of Section 4.1). The same traversal runs
// with the seen-match check disabled — degenerating to SQ-DB-SKY over
// the RQ interface — across increasing skyline sizes.
//
// Expected shape: with few skyline tuples the two coincide; as |S| grows
// the ablated variant re-returns skyline tuples combinatorially while
// the full algorithm's cost stays near-linear in |S| (the Figure 6
// mechanism isolated to a single switch).

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "dataset/small_domain.h"
#include "interface/ranking.h"
#include "skyline/compute.h"

namespace {

using namespace hdsky;

constexpr int64_t kCap = 100000;

bench::CsvSink& Sink() {
  static bench::CsvSink sink(
      "ablation_rq_early_termination",
      "target_skyline,actual_skyline,with_early_term,without_early_term,"
      "ablated_capped");
  return sink;
}

void BM_EarlyTermination(benchmark::State& state) {
  const int64_t target = state.range(0);
  dataset::SmallDomainOptions o;
  o.num_tuples = bench::Scaled(2000);
  o.num_attributes = 4;
  o.domain_size = 16;
  o.iface = data::InterfaceType::kRQ;
  o.seed = 3200 + static_cast<uint64_t>(target);
  const data::Table t = bench::Unwrap(
      dataset::GenerateWithSkylineSize(o, target,
                                       std::max<int64_t>(2, target / 10)),
      "data");
  const int64_t actual = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());

  int64_t with_cost = 0, without_cost = 0;
  bool capped = false;
  for (auto _ : state) {
    {
      auto iface = bench::MakeInterface(
          &t, interface::MakeLayeredRandomRanking(11), 1);
      with_cost =
          bench::Unwrap(core::RqDbSky(iface.get()), "rq").query_cost;
    }
    {
      auto iface = bench::MakeInterface(
          &t, interface::MakeLayeredRandomRanking(11), 1);
      core::RqDbSkyOptions opts;
      opts.disable_early_termination = true;
      opts.common.max_queries = kCap;
      auto r = bench::Unwrap(core::RqDbSky(iface.get(), opts), "ablated");
      without_cost = r.query_cost;
      capped = !r.complete;
    }
  }
  state.counters["skyline"] = static_cast<double>(actual);
  state.counters["with_early_term"] = static_cast<double>(with_cost);
  state.counters["without_early_term"] =
      static_cast<double>(without_cost);
  Sink().Row("%lld,%lld,%lld,%lld,%d", (long long)target,
             (long long)actual, (long long)with_cost,
             (long long)without_cost, capped ? 1 : 0);
}

}  // namespace

BENCHMARK(BM_EarlyTermination)
    ->Arg(5)
    ->Arg(20)
    ->Arg(40)
    ->Arg(60)
    ->Arg(80)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
