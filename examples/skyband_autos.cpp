// Sky-band discovery as a top-k index (Sections 2.1 and 7.2): the top-2
// sky band of a used-car site contains the top-2 answers of EVERY
// monotone ranking function, so a price-comparison service can discover
// it once and then answer "best two cars for my taste" queries for any
// user locally.
//
//   ./examples/skyband_autos

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/skyband_discovery.h"
#include "dataset/yahoo_autos.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"

int main() {
  using namespace hdsky;

  dataset::YahooAutosOptions gen;
  gen.num_tuples = 30000;  // scaled-down listing pool for a quick demo
  auto table_result = dataset::GenerateYahooAutos(gen);
  if (!table_result.ok()) return 1;
  const data::Table listings = std::move(table_result).value();

  interface::TopKOptions topk;
  topk.k = 50;
  auto iface_result = interface::TopKInterface::Create(
      &listings,
      interface::MakeLexicographicRanking(
          {dataset::YahooAutosAttrs::kPrice}),
      topk);
  if (!iface_result.ok()) return 1;
  auto iface = std::move(iface_result).value();

  std::printf("discovering the top-2 sky band of %lld listings...\n",
              static_cast<long long>(listings.num_rows()));
  core::SkybandOptions opts;
  opts.band = 2;
  auto band = core::RqDbSkyband(iface.get(), opts);
  if (!band.ok()) {
    std::fprintf(stderr, "skyband: %s\n",
                 band.status().ToString().c_str());
    return 1;
  }
  std::printf("band size: %zu cars, %lld queries\n\n",
              band->skyline.size(),
              static_cast<long long>(band->query_cost));

  // Serve top-2 for arbitrary user weightings (price, mileage, age),
  // each answered from the band with no further web access.
  struct Taste {
    const char* name;
    double w[3];
  };
  const Taste tastes[] = {
      {"cheapest ride", {5.0, 0.5, 0.5}},
      {"low-mileage fan", {0.7, 5.0, 0.7}},
      {"newest possible", {0.5, 0.5, 5.0}},
      {"balanced", {1.0, 1.0, 1.0}},
  };
  const double scale[3] = {300000.0, 400000.0, 25.0};
  for (const Taste& taste : tastes) {
    std::vector<size_t> order(band->skyline.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto score = [&](size_t i) {
      double s = 0;
      for (int a = 0; a < 3; ++a) {
        s += taste.w[a] *
             static_cast<double>(
                 band->skyline[i][static_cast<size_t>(a)]) /
             scale[a];
      }
      return s;
    };
    std::partial_sort(order.begin(),
                      order.begin() + std::min<size_t>(2, order.size()),
                      order.end(),
                      [&](size_t a, size_t b) { return score(a) < score(b); });
    std::printf("top 2 for '%s':\n", taste.name);
    for (size_t i = 0; i < std::min<size_t>(2, order.size()); ++i) {
      const data::Tuple& t = band->skyline[order[i]];
      std::printf("  $%-6lld  %6lld miles  model year %lld\n",
                  static_cast<long long>(t[0]),
                  static_cast<long long>(t[1]),
                  2015 - static_cast<long long>(t[2]));
    }
  }
  return 0;
}
