// Quickstart: build a small hidden database, wrap it in a top-k search
// interface, and discover its skyline with RQ-DB-SKY — then compare
// against the locally computed ground truth.
//
//   ./examples/quickstart
//
// The public API surface used here:
//   data::Schema / data::Table     — the (hidden) data
//   interface::TopKInterface      — the only query channel
//   core::RqDbSky                 — discovery through the interface
//   skyline::SkylineSFS           — local ground truth (we own this data)

#include <cstdio>

#include "core/rq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "skyline/compute.h"

int main() {
  using namespace hdsky;

  // A 3-attribute database of 5,000 tuples; every attribute supports
  // two-ended ranges (RQ), smaller values preferred.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 5000;
  gen.num_attributes = 3;
  gen.domain_size = 1000;
  gen.distribution = dataset::Distribution::kIndependent;
  gen.seed = 2016;
  auto table_result = dataset::GenerateSynthetic(gen);
  if (!table_result.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const data::Table table = std::move(table_result).value();

  // The proprietary search interface: top-5 answers ranked by a linear
  // scoring function the discovery algorithm never sees.
  interface::TopKOptions topk;
  topk.k = 5;
  auto iface_result = interface::TopKInterface::Create(
      &table, interface::MakeSumRanking(), topk);
  if (!iface_result.ok()) {
    std::fprintf(stderr, "interface: %s\n",
                 iface_result.status().ToString().c_str());
    return 1;
  }
  auto iface = std::move(iface_result).value();

  // Discover the skyline through the interface alone.
  auto discovery = core::RqDbSky(iface.get());
  if (!discovery.ok()) {
    std::fprintf(stderr, "discovery: %s\n",
                 discovery.status().ToString().c_str());
    return 1;
  }

  // Ground truth (we own the data here; a real client would not).
  const auto truth = skyline::SkylineSFS(table);

  std::printf("database size      : %lld tuples\n",
              static_cast<long long>(table.num_rows()));
  std::printf("true skyline size  : %zu\n", truth.size());
  std::printf("discovered skyline : %zu tuples\n",
              discovery->skyline.size());
  std::printf("query cost         : %lld top-%d queries\n",
              static_cast<long long>(discovery->query_cost), topk.k);
  std::printf("complete           : %s\n",
              discovery->complete ? "yes" : "no");

  std::printf("\nfirst skyline tuples (A0, A1, A2):\n");
  const size_t show = std::min<size_t>(discovery->skyline.size(), 5);
  for (size_t i = 0; i < show; ++i) {
    const data::Tuple& t = discovery->skyline[i];
    std::printf("  #%lld  (%lld, %lld, %lld)\n",
                static_cast<long long>(discovery->skyline_ids[i]),
                static_cast<long long>(t[0]), static_cast<long long>(t[1]),
                static_cast<long long>(t[2]));
  }

  const bool match = discovery->skyline_ids.size() == truth.size();
  std::printf("\nmatches ground truth: %s\n", match ? "YES" : "NO");
  return match ? 0 : 2;
}
