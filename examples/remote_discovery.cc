// Remote discovery: spawn a DatabaseServer on a loopback socket, connect
// a RemoteHiddenDatabase client to it, and run SQ-DB-SKY through the
// wire protocol — exactly as it would run in-process. Because
// RemoteHiddenDatabase implements interface::HiddenDatabase, the
// discovery algorithm cannot tell the difference; the example proves it
// by comparing the remote run against local ground truth and printing
// the client/server accounting.
//
//   ./examples/remote_discovery
//
// The public API surface used here:
//   service::DatabaseServer        — serves any HiddenDatabase over TCP
//   service::RemoteHiddenDatabase  — HiddenDatabase backed by a socket
//   core::SqDbSky                  — discovery, unchanged over the wire
//   skyline::SkylineSFS            — local ground truth (we own the data)

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/sq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "service/remote_database.h"
#include "service/server.h"
#include "skyline/compute.h"

int main() {
  using namespace hdsky;

  // A 3-attribute database with small single-predicate (SQ) domains —
  // SQ-DB-SKY sweeps attribute values one point predicate at a time, so
  // small domains keep the walk short.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 2000;
  gen.num_attributes = 3;
  gen.domain_size = 30;
  gen.iface = data::InterfaceType::kSQ;
  gen.seed = 2016;
  auto table_result = dataset::GenerateSynthetic(gen);
  if (!table_result.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const data::Table table = std::move(table_result).value();

  // The hidden database: a top-5 interface over a ranking the client
  // never sees.
  interface::TopKOptions topk;
  topk.k = 5;
  auto iface_result = interface::TopKInterface::Create(
      &table, interface::MakeSumRanking(), topk);
  if (!iface_result.ok()) {
    std::fprintf(stderr, "interface: %s\n",
                 iface_result.status().ToString().c_str());
    return 1;
  }
  auto iface = std::move(iface_result).value();

  // Serve it on an ephemeral loopback port.
  service::DatabaseServer::Options server_options;
  auto server_result =
      service::DatabaseServer::Start(iface.get(), server_options);
  if (!server_result.ok()) {
    std::fprintf(stderr, "serve: %s\n",
                 server_result.status().ToString().c_str());
    return 1;
  }
  auto server = std::move(server_result).value();
  std::printf("server listening on 127.0.0.1:%u\n", server->port());

  // Connect a client. From here on, `remote` IS a HiddenDatabase.
  auto remote_result = service::RemoteHiddenDatabase::Connect(
      "127.0.0.1", server->port(), {});
  if (!remote_result.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 remote_result.status().ToString().c_str());
    return 1;
  }
  auto remote = std::move(remote_result).value();
  std::printf("connected; server schema: %s, k=%d\n",
              remote->schema().ToString().c_str(), remote->k());

  // Discover the skyline through the socket alone.
  auto discovery = core::SqDbSky(remote.get());
  if (!discovery.ok()) {
    std::fprintf(stderr, "discovery: %s\n",
                 discovery.status().ToString().c_str());
    return 1;
  }

  // Ground truth: the distinct skyline value vectors (duplicated tuples
  // collapse — the interface cannot distinguish value-identical rows).
  const auto truth = skyline::DistinctSkylineValues(table);
  std::vector<data::Tuple> discovered = discovery->skyline;
  std::sort(discovered.begin(), discovered.end());
  discovered.erase(std::unique(discovered.begin(), discovered.end()),
                   discovered.end());

  std::printf("\ndatabase size      : %lld tuples\n",
              static_cast<long long>(table.num_rows()));
  std::printf("true skyline size  : %zu distinct value vectors\n",
              truth.size());
  std::printf("discovered skyline : %zu tuples\n",
              discovery->skyline.size());
  std::printf("query cost         : %lld top-%d queries over the wire\n",
              static_cast<long long>(discovery->query_cost), topk.k);
  std::printf("complete           : %s\n",
              discovery->complete ? "yes" : "no");

  const auto client_stats = remote->stats();
  std::printf("\nclient stats       : %lld remote queries, %lld retries, "
              "%lld B out / %lld B in\n",
              static_cast<long long>(client_stats.remote_queries),
              static_cast<long long>(client_stats.retries),
              static_cast<long long>(client_stats.bytes_sent),
              static_cast<long long>(client_stats.bytes_received));
  server->Stop();
  const auto stats = server->stats();
  std::printf("server accounting  : %lld served, %lld replayed, "
              "%lld protocol errors\n",
              static_cast<long long>(stats.queries_served),
              static_cast<long long>(stats.queries_replayed),
              static_cast<long long>(stats.protocol_errors));

  // The wire added nothing and lost nothing: the backend saw exactly
  // one execution per external query the algorithm issued.
  const bool accounted =
      stats.queries_served == discovery->query_cost &&
      client_stats.remote_queries == discovery->query_cost;
  const bool match = discovered == truth;
  std::printf("\nmatches ground truth: %s\n", match ? "YES" : "NO");
  std::printf("exact accounting    : %s\n", accounted ? "YES" : "NO");
  return (match && accounted) ? 0 : 2;
}
