// Rate-limited skyline discovery over a flight-search API (the paper's
// Google Flights scenario, Section 8.3): the QPX-style interface allows
// only 50 free queries per day, so the client runs MQ-DB-SKY under a
// hard budget, keeps the verified partial skyline (the anytime property,
// Section 7.1), and resumes on the next "day" until discovery completes.
//
//   ./examples/flight_search

#include <cstdio>

#include "core/mq_db_sky.h"
#include "interface/caching_database.h"
#include "dataset/google_flights.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "skyline/compute.h"

int main() {
  using namespace hdsky;

  // One route+date inventory behind the search API.
  dataset::GoogleFlightsOptions gen;
  gen.num_flights = 240;
  gen.seed = 99;
  auto table_result = dataset::GenerateRoute(gen);
  if (!table_result.ok()) return 1;
  const data::Table route = std::move(table_result).value();
  const size_t true_skyline = skyline::DistinctSkylineValues(route).size();

  std::printf("route inventory: %lld itineraries, %zu skyline flights\n",
              static_cast<long long>(route.num_rows()), true_skyline);
  std::printf("API limit: 50 free queries per day, k = 1\n\n");

  constexpr int64_t kDailyQuota = 50;
  // The site enforces its quota; the CLIENT keeps an answer cache. Every
  // day the quota resets, the algorithm re-runs deterministically, the
  // cached prefix replays for free, and only NEW queries touch the
  // quota. (CachingDatabase::SaveToFile/LoadFromFile would persist the
  // cache across process restarts.)
  interface::TopKOptions topk;
  topk.k = 1;
  auto iface_result = interface::TopKInterface::Create(
      &route,
      interface::MakeLexicographicRanking(
          {dataset::GoogleFlightsAttrs::kPrice}),
      topk);
  if (!iface_result.ok()) return 1;
  auto iface = std::move(iface_result).value();
  interface::CachingDatabase client(iface.get());

  int64_t total_queries = 0;
  for (int day = 1; day <= 10; ++day) {
    iface->SetBudget(kDailyQuota);  // a fresh day's quota
    auto result = core::MqDbSky(&client);
    if (!result.ok()) {
      std::fprintf(stderr, "discovery: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    total_queries = iface->stats().queries_issued;
    std::printf("day %d: spent %3lld of today's %lld, cache replayed "
                "%4lld, confirmed %2zu/%zu skyline flights%s\n",
                day,
                static_cast<long long>(kDailyQuota -
                                       iface->RemainingBudget()),
                static_cast<long long>(kDailyQuota),
                static_cast<long long>(client.hits()),
                result->skyline.size(), true_skyline,
                result->complete ? "  <- complete" : "");
    if (result->complete) {
      std::printf("\ncheapest few skyline flights "
                  "(stops, price$, connection_min, depart):\n");
      const size_t show = std::min<size_t>(result->skyline.size(), 5);
      for (size_t i = 0; i < show; ++i) {
        const data::Tuple& t = result->skyline[i];
        const long long depart = 1439 - t[3];
        std::printf("  %lld stop(s)  $%-5lld  %3lld min  %02lld:%02lld\n",
                    static_cast<long long>(t[0]),
                    static_cast<long long>(t[1]),
                    static_cast<long long>(t[2]), depart / 60,
                    depart % 60);
      }
      std::printf("\ntotal queries spent: %lld\n",
                  static_cast<long long>(total_queries));
      return 0;
    }
  }
  std::printf("discovery did not finish within 10 days\n");
  return 2;
}
