// The paper's motivating application (Section 1): a third-party diamond
// search service over a hidden web catalog. The store (here, a simulated
// Blue Nile) ranks by ITS function — price low-to-high — but the service
// wants to answer ANY user-specified monotone ranking. Discovering the
// skyline once suffices: the top-1 of every monotone ranking function is
// a skyline tuple, so the service can answer all such queries locally
// without another web request.
//
//   ./examples/diamond_aggregator
//
// Flow: simulate the store -> wrap in its top-k interface -> MQ-DB-SKY
// through the public search channel only -> serve three different user
// preference profiles from the discovered skyline.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/mq_db_sky.h"
#include "dataset/blue_nile.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"

namespace {

using namespace hdsky;

// A user's preference profile: positive weights per ranking attribute
// (Price, Carat, Cut, Color, Clarity), applied to the normalized
// smaller-is-better codes.
struct Profile {
  const char* name;
  double weights[5];
};

double Score(const data::Tuple& t, const Profile& p) {
  // Normalize each attribute by its rough scale so weights compare
  // across units (price in dollars vs grades in steps).
  const double scale[5] = {3000000.0, 2200.0, 3.0, 7.0, 7.0};
  double s = 0;
  for (int i = 0; i < 5; ++i) {
    s += p.weights[i] * static_cast<double>(t[static_cast<size_t>(i)]) /
         scale[i];
  }
  return s;
}

}  // namespace

int main() {
  using namespace hdsky;

  dataset::BlueNileOptions gen;
  gen.num_tuples = 60000;  // scaled-down catalog for a quick demo
  auto table_result = dataset::GenerateBlueNile(gen);
  if (!table_result.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 table_result.status().ToString().c_str());
    return 1;
  }
  const data::Table store = std::move(table_result).value();

  // The store's proprietary interface: top-50 by price.
  interface::TopKOptions topk;
  topk.k = 50;
  auto iface_result = interface::TopKInterface::Create(
      &store,
      interface::MakeLexicographicRanking(
          {dataset::BlueNileAttrs::kPrice}),
      topk);
  if (!iface_result.ok()) return 1;
  auto iface = std::move(iface_result).value();

  std::printf("discovering the skyline of a %lld-diamond catalog...\n",
              static_cast<long long>(store.num_rows()));
  auto discovery = core::MqDbSky(iface.get());
  if (!discovery.ok()) {
    std::fprintf(stderr, "discovery: %s\n",
                 discovery.status().ToString().c_str());
    return 1;
  }
  std::printf("skyline: %zu diamonds in %lld queries (%.2f per tuple)\n\n",
              discovery->skyline.size(),
              static_cast<long long>(discovery->query_cost),
              static_cast<double>(discovery->query_cost) /
                  static_cast<double>(discovery->skyline.size()));

  const Profile profiles[] = {
      {"bargain hunter", {5.0, 1.0, 0.3, 0.3, 0.3}},
      {"size maximalist", {0.5, 5.0, 0.5, 0.5, 0.5}},
      {"quality purist", {0.5, 0.7, 3.0, 3.0, 3.0}},
  };
  for (const Profile& p : profiles) {
    std::vector<size_t> order(discovery->skyline.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::partial_sort(order.begin(),
                      order.begin() + std::min<size_t>(3, order.size()),
                      order.end(), [&](size_t a, size_t b) {
                        return Score(discovery->skyline[a], p) <
                               Score(discovery->skyline[b], p);
                      });
    std::printf("top picks for the %s (price$, carat/100 inv, cut, "
                "color, clarity):\n",
                p.name);
    for (size_t i = 0; i < std::min<size_t>(3, order.size()); ++i) {
      const data::Tuple& t = discovery->skyline[order[i]];
      std::printf("  $%-8lld carat %.2f  cut %lld  color %lld  "
                  "clarity %lld\n",
                  static_cast<long long>(t[0]),
                  (2200.0 - static_cast<double>(t[1])) / 100.0,
                  static_cast<long long>(t[2]),
                  static_cast<long long>(t[3]),
                  static_cast<long long>(t[4]));
    }
    std::printf("\n");
  }
  std::printf("every answer above required ZERO further web queries.\n");
  return 0;
}
