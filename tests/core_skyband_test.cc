// Correctness tests for the sky-band extensions (Section 7.2): RQ, PQ,
// and the best-effort SQ variant, validated against local K-skyband
// ground truth at distinct-value granularity.

#include <algorithm>

#include <gtest/gtest.h>

#include "core/skyband_discovery.h"
#include "dataset/synthetic.h"
#include "skyline/skyband.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::InterfaceType;
using data::Table;
using data::Tuple;
using data::TupleId;
using interface::MakeLayeredRandomRanking;
using interface::MakeSumRanking;
using testutil::MakeInterface;

Table MakeData(int m, int64_t n, int64_t domain, InterfaceType iface,
               uint64_t seed) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = m;
  o.domain_size = domain;
  o.iface = iface;
  o.seed = seed;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

// Ground-truth K-skyband as distinct ranking-value combinations.
std::vector<Tuple> BandValues(const Table& t, int band) {
  const auto& ranking = t.schema().ranking_attributes();
  std::vector<Tuple> values;
  for (TupleId row : skyline::KSkyband(t, band)) {
    Tuple v;
    for (int attr : ranking) v.push_back(t.value(row, attr));
    values.push_back(std::move(v));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

struct BandParam {
  int m;
  int64_t n;
  int64_t domain;
  int band;
  int k;
  uint64_t seed;
};

class RqBandCorrectness : public ::testing::TestWithParam<BandParam> {};

TEST_P(RqBandCorrectness, DiscoversExactBand) {
  const BandParam p = GetParam();
  const Table t = MakeData(p.m, p.n, p.domain, InterfaceType::kRQ, p.seed);
  auto iface = MakeInterface(&t, MakeSumRanking(), p.k);
  SkybandOptions opts;
  opts.band = p.band;
  auto result = RqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            BandValues(t, p.band));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RqBandCorrectness,
    ::testing::Values(BandParam{2, 200, 60, 1, 1, 130},
                      BandParam{2, 200, 60, 2, 1, 131},
                      BandParam{2, 200, 60, 3, 1, 132},
                      BandParam{3, 150, 30, 2, 1, 133},
                      BandParam{3, 150, 30, 2, 5, 134},
                      BandParam{3, 100, 20, 3, 2, 135},
                      BandParam{2, 300, 15, 2, 1, 136},  // duplicates
                      BandParam{2, 5, 40, 2, 1, 137}));

class PqBandCorrectness : public ::testing::TestWithParam<BandParam> {};

TEST_P(PqBandCorrectness, DiscoversExactBand) {
  const BandParam p = GetParam();
  const Table t = MakeData(p.m, p.n, p.domain, InterfaceType::kPQ, p.seed);
  auto iface = MakeInterface(&t, MakeSumRanking(), p.k);
  SkybandOptions opts;
  opts.band = p.band;
  auto result = PqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            BandValues(t, p.band));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PqBandCorrectness,
    ::testing::Values(BandParam{2, 200, 12, 2, 2, 140},
                      BandParam{2, 200, 12, 2, 5, 141},
                      BandParam{3, 200, 8, 2, 3, 142},
                      BandParam{3, 200, 8, 3, 3, 143},
                      BandParam{2, 300, 10, 1, 1, 144},
                      BandParam{4, 250, 6, 2, 4, 145}));

TEST(PqBandTest, RejectsKSmallerThanBand) {
  const Table t = MakeData(2, 50, 10, InterfaceType::kPQ, 146);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  SkybandOptions opts;
  opts.band = 3;
  EXPECT_TRUE(PqDbSkyband(iface.get(), opts).status().IsUnsupported());
}

TEST(SqBandTest, LargeKEnablesBestEffortCompleteness) {
  // With generous k the within-answer branching rule finds pivots
  // everywhere and the band is complete.
  const Table t = MakeData(2, 150, 40, InterfaceType::kSQ, 147);
  auto iface = MakeInterface(&t, MakeSumRanking(), 25);
  SkybandOptions opts;
  opts.band = 2;
  auto result = SqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  // Sound: everything reported is in the true band.
  const auto truth = BandValues(t, 2);
  for (const Tuple& v : testutil::DiscoveredValues(*result, t.schema())) {
    EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), v));
  }
  if (result->complete) {
    EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()), truth);
  }
}

TEST(SqBandTest, BandOneDegeneratesToSkyline) {
  const Table t = MakeData(3, 200, 40, InterfaceType::kSQ, 148);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  SkybandOptions opts;
  opts.band = 1;
  auto result = SqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            skyline::DistinctSkylineValues(t));
}

TEST(SqBandTest, CrawlWhenStuckRestoresCompleteness) {
  // k = 1 makes the pivot rule fail immediately for band 2; the crawl
  // fallback pays more queries but recovers the exact band.
  const Table t = MakeData(2, 80, 20, InterfaceType::kSQ, 149);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  SkybandOptions opts;
  opts.band = 2;
  opts.crawl_when_stuck = true;
  auto result = SqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->complete);
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            BandValues(t, 2));
}

TEST(SqBandTest, StuckWithoutCrawlIsSoundButIncomplete) {
  const Table t = MakeData(2, 200, 50, InterfaceType::kSQ, 150);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  SkybandOptions opts;
  opts.band = 2;
  auto result = SqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  const auto truth = BandValues(t, 2);
  for (const Tuple& v : testutil::DiscoveredValues(*result, t.schema())) {
    EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), v));
  }
}

TEST(BandCostTest, DeeperBandsCostMore) {
  const Table t = MakeData(2, 200, 60, InterfaceType::kRQ, 151);
  int64_t prev = -1;
  for (int band : {1, 2, 3}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), 2);
    SkybandOptions opts;
    opts.band = band;
    auto result = RqDbSkyband(iface.get(), opts);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result->query_cost, prev);
    prev = result->query_cost;
  }
}

TEST(BandTest, RandomRankingRq) {
  const Table t = MakeData(2, 150, 40, InterfaceType::kRQ, 152);
  auto iface = MakeInterface(&t, MakeLayeredRandomRanking(7), 1);
  SkybandOptions opts;
  opts.band = 2;
  auto result = RqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            BandValues(t, 2));
}

TEST(BandTest, InvalidBandRejected) {
  const Table t = MakeData(2, 10, 10, InterfaceType::kRQ, 153);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  SkybandOptions opts;
  opts.band = 0;
  EXPECT_TRUE(RqDbSkyband(iface.get(), opts).status().IsInvalidArgument());
  EXPECT_TRUE(PqDbSkyband(iface.get(), opts).status().IsInvalidArgument());
  EXPECT_TRUE(SqDbSkyband(iface.get(), opts).status().IsInvalidArgument());
}

}  // namespace
}  // namespace core
}  // namespace hdsky
