// Unit tests for data/: attribute specs, schema validation, table storage.

#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/schema.h"
#include "data/table.h"

namespace hdsky {
namespace data {
namespace {

AttributeSpec R(const char* name, InterfaceType iface, Value lo, Value hi) {
  return {name, AttributeKind::kRanking, iface, lo, hi};
}

AttributeSpec F(const char* name, Value lo, Value hi) {
  return {name, AttributeKind::kFiltering, InterfaceType::kFilterEquality,
          lo, hi};
}

Schema MakeSchema() {
  auto r = Schema::Create({R("price", InterfaceType::kRQ, 0, 999),
                           R("stops", InterfaceType::kPQ, 0, 2),
                           F("carrier", 0, 9)});
  EXPECT_TRUE(r.ok());
  return std::move(r).value();
}

TEST(SchemaTest, CreateClassifiesAttributes) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.num_attributes(), 3);
  EXPECT_EQ(s.num_ranking_attributes(), 2);
  EXPECT_EQ(s.ranking_attributes(), (std::vector<int>{0, 1}));
  EXPECT_EQ(s.filtering_attributes(), (std::vector<int>{2}));
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_TRUE(Schema::Create({}).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto r = Schema::Create({R("a", InterfaceType::kRQ, 0, 1),
                           R("a", InterfaceType::kRQ, 0, 1)});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto r = Schema::Create({R("", InterfaceType::kRQ, 0, 1)});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsInvertedDomain) {
  auto r = Schema::Create({R("a", InterfaceType::kRQ, 5, 4)});
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsFilteringWithRangeInterface) {
  AttributeSpec bad = F("f", 0, 3);
  bad.iface = InterfaceType::kRQ;
  EXPECT_TRUE(Schema::Create({bad}).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsRankingWithFilterInterface) {
  AttributeSpec bad = R("r", InterfaceType::kRQ, 0, 3);
  bad.iface = InterfaceType::kFilterEquality;
  EXPECT_TRUE(Schema::Create({bad}).status().IsInvalidArgument());
}

TEST(SchemaTest, IndexOf) {
  const Schema s = MakeSchema();
  EXPECT_EQ(*s.IndexOf("stops"), 1);
  EXPECT_TRUE(s.IndexOf("nope").status().IsNotFound());
}

TEST(SchemaTest, RankingAttributesWithInterface) {
  const Schema s = MakeSchema();
  EXPECT_EQ(s.RankingAttributesWithInterface(InterfaceType::kRQ),
            (std::vector<int>{0}));
  EXPECT_EQ(s.RankingAttributesWithInterface(InterfaceType::kPQ),
            (std::vector<int>{1}));
  EXPECT_TRUE(s.RankingAttributesWithInterface(InterfaceType::kSQ).empty());
}

TEST(SchemaTest, WithInterface) {
  const Schema s = MakeSchema();
  auto s2 = s.WithInterface(0, InterfaceType::kSQ);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->attribute(0).iface, InterfaceType::kSQ);
  EXPECT_EQ(s.attribute(0).iface, InterfaceType::kRQ);  // original intact
  EXPECT_TRUE(s.WithInterface(9, InterfaceType::kSQ)
                  .status()
                  .IsInvalidArgument());
}

TEST(SchemaTest, Project) {
  const Schema s = MakeSchema();
  auto p = s.Project({1, 0});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_attributes(), 2);
  EXPECT_EQ(p->attribute(0).name, "stops");
  EXPECT_EQ(p->attribute(1).name, "price");
  EXPECT_TRUE(s.Project({7}).status().IsInvalidArgument());
}

TEST(SchemaTest, ToStringMentionsEveryAttribute) {
  const std::string str = MakeSchema().ToString();
  EXPECT_NE(str.find("price"), std::string::npos);
  EXPECT_NE(str.find("stops"), std::string::npos);
  EXPECT_NE(str.find("carrier"), std::string::npos);
}

TEST(AttributeTest, SupportPredicates) {
  EXPECT_TRUE(R("a", InterfaceType::kSQ, 0, 1).supports_upper_bound());
  EXPECT_FALSE(R("a", InterfaceType::kSQ, 0, 1).supports_lower_bound());
  EXPECT_TRUE(R("a", InterfaceType::kRQ, 0, 1).supports_lower_bound());
  EXPECT_FALSE(R("a", InterfaceType::kPQ, 0, 1).supports_upper_bound());
  EXPECT_EQ(R("a", InterfaceType::kPQ, 2, 7).DomainSize(), 6);
}

TEST(TableTest, AppendAndRead) {
  Table t(MakeSchema());
  ASSERT_TRUE(t.Append({100, 1, 3}).ok());
  ASSERT_TRUE(t.Append({200, 0, 5}).ok());
  EXPECT_EQ(t.num_rows(), 2);
  EXPECT_EQ(t.value(0, 0), 100);
  EXPECT_EQ(t.value(1, 1), 0);
  EXPECT_EQ(t.GetTuple(1), (Tuple{200, 0, 5}));
  EXPECT_EQ(t.column(0), (std::vector<Value>{100, 200}));
}

TEST(TableTest, AppendValidatesArity) {
  Table t(MakeSchema());
  EXPECT_TRUE(t.Append({1, 2}).IsInvalidArgument());
}

TEST(TableTest, AppendValidatesDomain) {
  Table t(MakeSchema());
  EXPECT_TRUE(t.Append({1000, 0, 0}).IsOutOfRange());  // price > 999
  EXPECT_TRUE(t.Append({5, 3, 0}).IsOutOfRange());     // stops > 2
}

TEST(TableTest, NullIsAlwaysLegal) {
  Table t(MakeSchema());
  EXPECT_TRUE(t.Append({kNullValue, 0, 0}).ok());
  EXPECT_EQ(t.value(0, 0), kNullValue);
}

TEST(TableTest, SampleWithoutReplacement) {
  Table t(MakeSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Append({i, i % 3, i % 10}).ok());
  }
  common::Rng rng(3);
  auto s = t.Sample(30, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 30);
  // Sampled values come from the original value set and are distinct.
  std::set<Value> seen;
  for (int64_t r = 0; r < 30; ++r) {
    const Value v = s->value(r, 0);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
    EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_TRUE(t.Sample(101, &rng).status().IsInvalidArgument());
}

TEST(TableTest, ProjectKeepsColumns) {
  Table t(MakeSchema());
  ASSERT_TRUE(t.Append({100, 1, 3}).ok());
  auto p = t.Project({1});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_rows(), 1);
  EXPECT_EQ(p->schema().num_attributes(), 1);
  EXPECT_EQ(p->value(0, 0), 1);
}

TEST(TableTest, WithInterfaceSwapsTaxonomy) {
  Table t(MakeSchema());
  ASSERT_TRUE(t.Append({100, 1, 3}).ok());
  auto t2 = t.WithInterface(0, data::InterfaceType::kSQ);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->schema().attribute(0).iface, data::InterfaceType::kSQ);
  EXPECT_EQ(t2->value(0, 0), 100);
}

TEST(TableTest, FilterRows) {
  Table t(MakeSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t.Append({i, i % 3, 0}).ok());
  }
  const Table f =
      t.FilterRows([&](TupleId r) { return t.value(r, 0) % 2 == 0; });
  EXPECT_EQ(f.num_rows(), 5);
  for (int64_t r = 0; r < f.num_rows(); ++r) {
    EXPECT_EQ(f.value(r, 0) % 2, 0);
  }
}

TEST(TableTest, EmptyTableBasics) {
  Table t(MakeSchema());
  EXPECT_EQ(t.num_rows(), 0);
  common::Rng rng(1);
  auto s = t.Sample(0, &rng);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->num_rows(), 0);
}

}  // namespace
}  // namespace data
}  // namespace hdsky
