// Unit and property tests for skyline/: dominance relations, the three
// local skyline algorithms (which must agree on every input), dominance
// layers, and K-skyband.

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "skyline/compute.h"
#include "skyline/dominance.h"
#include "skyline/skyband.h"

namespace hdsky {
namespace skyline {
namespace {

using data::Table;
using data::Tuple;
using data::TupleId;
using data::Value;

const std::vector<int> kAttrs2{0, 1};
const std::vector<int> kAttrs3{0, 1, 2};

TEST(DominanceTest, StrictDomination) {
  EXPECT_EQ(Compare({1, 2}, {2, 3}, kAttrs2), DomRelation::kDominates);
  EXPECT_EQ(Compare({2, 3}, {1, 2}, kAttrs2), DomRelation::kDominatedBy);
}

TEST(DominanceTest, WeakDominationOneAttributeTied) {
  EXPECT_EQ(Compare({1, 3}, {1, 4}, kAttrs2), DomRelation::kDominates);
  EXPECT_TRUE(Dominates({1, 3}, {1, 4}, kAttrs2));
}

TEST(DominanceTest, EqualTuplesDoNotDominate) {
  EXPECT_EQ(Compare({1, 2}, {1, 2}, kAttrs2), DomRelation::kEqual);
  EXPECT_FALSE(Dominates({1, 2}, {1, 2}, kAttrs2));
}

TEST(DominanceTest, Incomparable) {
  EXPECT_EQ(Compare({1, 5}, {5, 1}, kAttrs2), DomRelation::kIncomparable);
}

TEST(DominanceTest, NullRanksWorst) {
  EXPECT_EQ(Compare({1, 1}, {1, data::kNullValue}, kAttrs2),
            DomRelation::kDominates);
  EXPECT_EQ(Compare({data::kNullValue, 1}, {1, data::kNullValue}, kAttrs2),
            DomRelation::kIncomparable);
}

TEST(DominanceTest, OnlyRankingAttributesMatter) {
  // Third attribute ignored when attrs = {0, 1}.
  EXPECT_EQ(Compare({1, 2, 9}, {2, 3, 0}, kAttrs2),
            DomRelation::kDominates);
}

Table MakeTable(const std::vector<Tuple>& rows, int m,
                Value domain = 1000000) {
  std::vector<data::AttributeSpec> attrs;
  for (int i = 0; i < m; ++i) {
    attrs.push_back({"A" + std::to_string(i), data::AttributeKind::kRanking,
                     data::InterfaceType::kRQ, 0, domain});
  }
  Table t(std::move(data::Schema::Create(std::move(attrs))).value());
  for (const Tuple& r : rows) {
    EXPECT_TRUE(t.Append(r).ok());
  }
  return t;
}

TEST(DominanceTest, CountDominators) {
  // Chain: (0,0) dom (1,1) dom (2,2); (0, 3) incomparable with (1,1).
  const Table t = MakeTable({{0, 0}, {1, 1}, {2, 2}, {0, 3}}, 2);
  EXPECT_EQ(CountDominators(t, 0, kAttrs2), 0);
  EXPECT_EQ(CountDominators(t, 1, kAttrs2), 1);
  EXPECT_EQ(CountDominators(t, 2, kAttrs2), 2);
  EXPECT_EQ(CountDominators(t, 3, kAttrs2), 1);
}

TEST(SkylineTest, PaperExampleFigure2) {
  // The running example of Figures 2-3: t4 dominates nothing else is
  // dominated; t1, t3, t4 are on the skyline, t2 is dominated by t4.
  const Table t = MakeTable(
      {{5, 1, 9}, {4, 4, 8}, {1, 3, 7}, {3, 2, 3}}, 3);
  const std::vector<TupleId> expected{0, 2, 3};
  EXPECT_EQ(SkylineBNL(t), expected);
  EXPECT_EQ(SkylineSFS(t), expected);
  EXPECT_EQ(SkylineDnC(t), expected);
}

TEST(SkylineTest, EmptyTable) {
  const Table t = MakeTable({}, 2);
  EXPECT_TRUE(SkylineBNL(t).empty());
  EXPECT_TRUE(SkylineSFS(t).empty());
  EXPECT_TRUE(SkylineDnC(t).empty());
}

TEST(SkylineTest, SingleTuple) {
  const Table t = MakeTable({{7, 8}}, 2);
  EXPECT_EQ(SkylineBNL(t), (std::vector<TupleId>{0}));
}

TEST(SkylineTest, AllDuplicatesStayOnSkyline) {
  // Equal tuples do not dominate each other (see dominance.h).
  const Table t = MakeTable({{3, 3}, {3, 3}, {3, 3}}, 2);
  EXPECT_EQ(SkylineBNL(t).size(), 3u);
  EXPECT_EQ(SkylineSFS(t).size(), 3u);
  EXPECT_EQ(SkylineDnC(t).size(), 3u);
}

TEST(SkylineTest, TotalOrderLeavesOneTuple) {
  const Table t = MakeTable({{5, 5}, {4, 4}, {3, 3}, {2, 2}, {1, 1}}, 2);
  EXPECT_EQ(SkylineBNL(t), (std::vector<TupleId>{4}));
}

TEST(SkylineTest, AntiChainKeepsAll) {
  const Table t = MakeTable({{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}, 2);
  EXPECT_EQ(SkylineBNL(t).size(), 5u);
}

TEST(SkylineTest, SubsetOfRows) {
  const Table t = MakeTable({{0, 0}, {5, 5}, {1, 9}, {9, 1}}, 2);
  // Excluding the dominating row 0, the rest are mutually incomparable.
  const std::vector<TupleId> rows{1, 2, 3};
  EXPECT_EQ(SkylineBNL(t, rows, kAttrs2).size(), 3u);
  EXPECT_EQ(SkylineSFS(t, rows, kAttrs2).size(), 3u);
  EXPECT_EQ(SkylineDnC(t, rows, kAttrs2).size(), 3u);
}

// Property: the three algorithms agree on random inputs across
// distributions and dimensionalities.
struct SkylineParam {
  dataset::Distribution dist;
  int m;
  int64_t n;
  int64_t domain;
  uint64_t seed;
};

class SkylineAgreement : public ::testing::TestWithParam<SkylineParam> {};

TEST_P(SkylineAgreement, AllAlgorithmsAgree) {
  const SkylineParam p = GetParam();
  dataset::SyntheticOptions opts;
  opts.num_tuples = p.n;
  opts.num_attributes = p.m;
  opts.domain_size = p.domain;
  opts.distribution = p.dist;
  opts.seed = p.seed;
  const Table t = std::move(dataset::GenerateSynthetic(opts)).value();
  const auto bnl = SkylineBNL(t);
  EXPECT_EQ(bnl, SkylineSFS(t));
  EXPECT_EQ(bnl, SkylineDnC(t));
  // Every skyline member has zero dominators; every non-member has one.
  std::set<TupleId> members(bnl.begin(), bnl.end());
  for (TupleId r = 0; r < t.num_rows(); ++r) {
    bool dominated = false;
    for (TupleId s = 0; s < t.num_rows() && !dominated; ++s) {
      dominated = RowDominates(t, s, r, t.schema().ranking_attributes());
    }
    EXPECT_EQ(members.count(r) == 0, dominated) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SkylineAgreement,
    ::testing::Values(
        SkylineParam{dataset::Distribution::kIndependent, 2, 200, 50, 1},
        SkylineParam{dataset::Distribution::kIndependent, 3, 300, 20, 2},
        SkylineParam{dataset::Distribution::kIndependent, 5, 150, 8, 3},
        SkylineParam{dataset::Distribution::kCorrelated, 3, 400, 100, 4},
        SkylineParam{dataset::Distribution::kCorrelated, 4, 250, 30, 5},
        SkylineParam{dataset::Distribution::kAntiCorrelated, 2, 300, 60, 6},
        SkylineParam{dataset::Distribution::kAntiCorrelated, 4, 200, 25, 7},
        SkylineParam{dataset::Distribution::kIndependent, 2, 500, 4, 8},
        SkylineParam{dataset::Distribution::kAntiCorrelated, 3, 350, 9,
                     9}));

TEST(DominanceLayersTest, LayersPartitionAndOrder) {
  dataset::SyntheticOptions opts;
  opts.num_tuples = 200;
  opts.num_attributes = 3;
  opts.domain_size = 30;
  opts.seed = 77;
  const Table t = std::move(dataset::GenerateSynthetic(opts)).value();
  std::vector<TupleId> rows(200);
  std::iota(rows.begin(), rows.end(), 0);
  const auto layers =
      DominanceLayers(t, rows, t.schema().ranking_attributes());
  // Partition.
  size_t total = 0;
  std::set<TupleId> seen;
  for (const auto& layer : layers) {
    total += layer.size();
    for (TupleId r : layer) EXPECT_TRUE(seen.insert(r).second);
  }
  EXPECT_EQ(total, 200u);
  // Layer 0 is the skyline.
  EXPECT_EQ(layers[0], SkylineSFS(t));
  // Every tuple in layer i > 0 is dominated by some tuple in layer i-1.
  for (size_t i = 1; i < layers.size(); ++i) {
    for (TupleId r : layers[i]) {
      bool dominated = false;
      for (TupleId s : layers[i - 1]) {
        if (RowDominates(t, s, r, t.schema().ranking_attributes())) {
          dominated = true;
          break;
        }
      }
      EXPECT_TRUE(dominated) << "layer " << i << " row " << r;
    }
  }
}

TEST(DominanceLayersTest, MaxLayersCap) {
  const Table t = MakeTable({{1, 1}, {2, 2}, {3, 3}, {4, 4}}, 2);
  std::vector<TupleId> rows{0, 1, 2, 3};
  const auto layers = DominanceLayers(t, rows, kAttrs2, 2);
  EXPECT_EQ(layers.size(), 2u);
}

TEST(SkybandTest, BandOneIsSkyline) {
  dataset::SyntheticOptions opts;
  opts.num_tuples = 300;
  opts.num_attributes = 3;
  opts.domain_size = 40;
  opts.seed = 31;
  const Table t = std::move(dataset::GenerateSynthetic(opts)).value();
  EXPECT_EQ(KSkyband(t, 1), SkylineSFS(t));
}

TEST(SkybandTest, MatchesBruteForceCounts) {
  dataset::SyntheticOptions opts;
  opts.num_tuples = 150;
  opts.num_attributes = 3;
  opts.domain_size = 12;
  opts.seed = 33;
  const Table t = std::move(dataset::GenerateSynthetic(opts)).value();
  const auto& ranking = t.schema().ranking_attributes();
  for (int band : {1, 2, 3, 5}) {
    const auto got = KSkyband(t, band);
    std::vector<TupleId> expected;
    for (TupleId r = 0; r < t.num_rows(); ++r) {
      if (CountDominators(t, r, ranking) < band) expected.push_back(r);
    }
    EXPECT_EQ(got, expected) << "band " << band;
  }
}

TEST(SkybandTest, BandGrowsWithK) {
  dataset::SyntheticOptions opts;
  opts.num_tuples = 200;
  opts.num_attributes = 2;
  opts.domain_size = 50;
  opts.seed = 35;
  const Table t = std::move(dataset::GenerateSynthetic(opts)).value();
  size_t prev = 0;
  for (int band = 1; band <= 4; ++band) {
    const size_t size = KSkyband(t, band).size();
    EXPECT_GE(size, prev);
    prev = size;
  }
}

TEST(SkybandTest, InvalidBandEmpty) {
  const Table t = MakeTable({{1, 1}}, 2);
  EXPECT_TRUE(KSkyband(t, 0).empty());
}

TEST(SkybandTest, DominatorCountsCapped) {
  const Table t = MakeTable({{1, 1}, {2, 2}, {3, 3}, {4, 4}}, 2);
  const auto counts = DominatorCounts(t, {3}, kAttrs2, 2);
  EXPECT_EQ(counts[0], 2);  // capped below the true 3
}

}  // namespace
}  // namespace skyline
}  // namespace hdsky
