// Tests for the federation subsystem: budget scheduler, cross-backend
// pruning decorator, entity merge, and end-to-end federated discovery
// over multiple local backends.

#include <limits>
#include <memory>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rq_db_sky.h"
#include "dataset/blue_nile.h"
#include "dataset/synthetic.h"
#include "federation/budget_scheduler.h"
#include "federation/entity_merge.h"
#include "federation/federated_discovery.h"
#include "federation/pruning_database.h"
#include "recovery/federation_state.h"
#include "skyline/compute.h"
#include "skyline/dominance.h"
#include "skyline/dominance_index.h"
#include "tests/test_util.h"

namespace hdsky {
namespace {

using data::Table;
using data::Tuple;
using data::TupleId;
using federation::AllocateBudget;
using federation::BackendYield;
using federation::Candidate;
using federation::EntityObservation;
using federation::FederatedResult;
using federation::FederationOptions;
using federation::JoinSkyline;
using federation::MergeUnionSkyline;
using federation::PruningDatabase;
using federation::RunFederatedDiscovery;
using interface::MakeSumRanking;
using testutil::MakeInterface;

// ---------------------------------------------------------------------------
// Budget scheduler

TEST(BudgetSchedulerTest, InactiveBackendsGetNothing) {
  std::vector<BackendYield> yields(3);
  yields[1].active = true;
  yields[1].ranking_attrs = 2;
  const auto alloc = AllocateBudget(yields, 100, 4);
  EXPECT_EQ(alloc[0], 0);
  EXPECT_EQ(alloc[1], 100);
  EXPECT_EQ(alloc[2], 0);
}

TEST(BudgetSchedulerTest, EveryUnitAssignedAndMinShareHolds) {
  std::vector<BackendYield> yields(3);
  for (int i = 0; i < 3; ++i) {
    yields[static_cast<size_t>(i)].active = true;
    yields[static_cast<size_t>(i)].ranking_attrs = 3;
    yields[static_cast<size_t>(i)].confirmed = 10 * (i + 1);
  }
  const int64_t budget = 101;  // odd on purpose: remainder must go somewhere
  const auto alloc = AllocateBudget(yields, budget, 4);
  int64_t total = 0;
  for (const int64_t a : alloc) {
    EXPECT_GE(a, 4);
    total += a;
  }
  EXPECT_EQ(total, budget);
}

TEST(BudgetSchedulerTest, HigherObservedYieldWinsBudget) {
  std::vector<BackendYield> yields(2);
  for (auto& y : yields) {
    y.active = true;
    y.ranking_attrs = 2;
    y.confirmed = 20;
    y.last_round_paid = 20;
  }
  yields[0].last_round_new = 10;  // 2 queries per new tuple
  yields[1].last_round_new = 1;   // 20 queries per new tuple
  const auto alloc = AllocateBudget(yields, 100, 4);
  EXPECT_GT(alloc[0], alloc[1]);
  EXPECT_EQ(alloc[0] + alloc[1], 100);
}

TEST(BudgetSchedulerTest, DeterministicForEqualInputs) {
  std::vector<BackendYield> yields(4);
  for (size_t i = 0; i < yields.size(); ++i) {
    yields[i].active = true;
    yields[i].ranking_attrs = 2 + static_cast<int>(i % 2);
    yields[i].confirmed = static_cast<int64_t>(7 * i);
    yields[i].last_round_paid = static_cast<int64_t>(3 * i);
    yields[i].last_round_new = static_cast<int64_t>(i);
  }
  EXPECT_EQ(AllocateBudget(yields, 77, 2), AllocateBudget(yields, 77, 2));
}

// ---------------------------------------------------------------------------
// PruningDatabase

data::Schema TwoAttrRqSchema() {
  return std::move(data::Schema::Create(
                       {{"a", data::AttributeKind::kRanking,
                         data::InterfaceType::kRQ, 0, 100},
                        {"b", data::AttributeKind::kRanking,
                         data::InterfaceType::kRQ, 0, 100}}))
      .value();
}

TEST(PruningDatabaseTest, PrunesRegionDominatedByFrozenWitness) {
  Table t(TwoAttrRqSchema());
  ASSERT_TRUE(t.Append({50, 50}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  PruningDatabase pruner(iface.get());

  skyline::DominanceIndex frozen({0, 1});
  frozen.Insert({10, 10});
  pruner.StartRound(-1, &frozen);

  // Region [20, 100] x [20, 100]: best corner (20, 20) is dominated by
  // the witness (10, 10) — answered free and empty.
  interface::Query pruned_q(2);
  pruned_q.AddAtLeast(0, 20).AddAtLeast(1, 20);
  auto r1 = pruner.Execute(pruned_q);
  ASSERT_TRUE(r1.ok()) << r1.status();
  EXPECT_TRUE(r1->empty());
  EXPECT_FALSE(r1->overflow);
  EXPECT_EQ(pruner.pruned(), 1);
  EXPECT_EQ(pruner.paid(), 0);

  // Region [5, 100] x [5, 100]: corner (5, 5) beats the witness — the
  // query is forwarded and pays.
  interface::Query open_q(2);
  open_q.AddAtLeast(0, 5).AddAtLeast(1, 5);
  auto r2 = pruner.Execute(open_q);
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_EQ(r2->size(), 1);
  EXPECT_EQ(pruner.paid(), 1);
}

TEST(PruningDatabaseTest, EqualCornerIsPrunedToo) {
  Table t(TwoAttrRqSchema());
  ASSERT_TRUE(t.Append({50, 50}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  PruningDatabase pruner(iface.get());

  skyline::DominanceIndex frozen({0, 1});
  frozen.Insert({20, 20});
  pruner.StartRound(-1, &frozen);

  // Corner exactly equals the witness: a value duplicate cannot improve
  // the union skyline, so equality prunes as well.
  interface::Query q(2);
  q.AddAtLeast(0, 20).AddAtLeast(1, 20);
  auto r = pruner.Execute(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(pruner.pruned(), 1);
}

TEST(PruningDatabaseTest, AllowancePausesAndResumesAcrossRounds) {
  Table t(TwoAttrRqSchema());
  ASSERT_TRUE(t.Append({1, 2}).ok());
  ASSERT_TRUE(t.Append({2, 1}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  PruningDatabase pruner(iface.get());

  pruner.StartRound(1, nullptr);
  interface::Query q(2);
  EXPECT_TRUE(pruner.Execute(q).ok());
  EXPECT_EQ(pruner.remaining(), 0);
  auto starved = pruner.Execute(q);
  EXPECT_TRUE(starved.status().IsResourceExhausted());
  EXPECT_TRUE(pruner.round_paused());
  EXPECT_FALSE(pruner.backend_exhausted());

  // A new round's allowance clears the pause.
  pruner.StartRound(1, nullptr);
  EXPECT_FALSE(pruner.round_paused());
  EXPECT_TRUE(pruner.Execute(q).ok());
  EXPECT_EQ(pruner.paid(), 2);
}

TEST(PruningDatabaseTest, BackendBudgetExhaustionIsTerminal) {
  Table t(TwoAttrRqSchema());
  ASSERT_TRUE(t.Append({1, 2}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 1, /*budget=*/1);
  PruningDatabase pruner(iface.get());

  pruner.StartRound(-1, nullptr);
  interface::Query q(2);
  EXPECT_TRUE(pruner.Execute(q).ok());
  auto refused = pruner.Execute(q);
  EXPECT_TRUE(refused.status().IsResourceExhausted());
  EXPECT_TRUE(pruner.backend_exhausted());
  EXPECT_FALSE(pruner.round_paused());
}

TEST(PruningDatabaseTest, ObservedPoolDeduplicatesById) {
  Table t(TwoAttrRqSchema());
  ASSERT_TRUE(t.Append({1, 2}).ok());
  ASSERT_TRUE(t.Append({2, 1}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  PruningDatabase pruner(iface.get());

  pruner.StartRound(-1, nullptr);
  interface::Query q(2);
  EXPECT_TRUE(pruner.Execute(q).ok());
  EXPECT_TRUE(pruner.Execute(q).ok());  // same page again
  EXPECT_EQ(pruner.paid(), 2);
  EXPECT_EQ(pruner.observed_ids().size(), 2u);
  EXPECT_EQ(pruner.observed_tuples().size(), 2u);
}

// ---------------------------------------------------------------------------
// Entity merge

Candidate MakeCandidate(int backend, TupleId id, Tuple rank_values) {
  Candidate c;
  c.backend = backend;
  c.id = id;
  c.tuple = rank_values;
  c.rank_values = std::move(rank_values);
  return c;
}

TEST(EntityMergeTest, GroupsDuplicateRanksAcrossSources) {
  // The same rank vector surfaces on two backends (and twice on one of
  // them under different listing ids): one group, every source listed.
  std::vector<Candidate> cands;
  cands.push_back(MakeCandidate(1, 7, {3, 4}));
  cands.push_back(MakeCandidate(0, 2, {3, 4}));
  cands.push_back(MakeCandidate(0, 9, {3, 4}));
  cands.push_back(MakeCandidate(1, 1, {1, 9}));
  const auto groups = MergeUnionSkyline(std::move(cands));
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].rank_values, Tuple({1, 9}));
  EXPECT_EQ(groups[1].rank_values, Tuple({3, 4}));
  ASSERT_EQ(groups[1].sources.size(), 3u);
  // Sources sorted by (backend, id); representative is the first.
  EXPECT_EQ(groups[1].sources[0], std::make_pair(0, TupleId{2}));
  EXPECT_EQ(groups[1].sources[1], std::make_pair(0, TupleId{9}));
  EXPECT_EQ(groups[1].sources[2], std::make_pair(1, TupleId{7}));
}

TEST(EntityMergeTest, CrossBackendDominanceIsFiltered) {
  std::vector<Candidate> cands;
  cands.push_back(MakeCandidate(0, 1, {5, 5}));
  cands.push_back(MakeCandidate(1, 1, {4, 5}));  // dominates backend 0's
  const auto groups = MergeUnionSkyline(std::move(cands));
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].rank_values, Tuple({4, 5}));
}

TEST(EntityMergeTest, EmptyMergeYieldsEmptySkyline) {
  EXPECT_TRUE(MergeUnionSkyline({}).empty());
}

TEST(EntityMergeTest, JoinRequiresEveryBackend) {
  // Entity keys: 1 on both backends, 2 only on backend 0.
  std::vector<std::vector<EntityObservation>> obs(2);
  obs[0].push_back({1, {5, 5}});
  obs[0].push_back({2, {1, 1}});
  obs[1].push_back({1, {3, 7}});
  const auto joined = JoinSkyline(obs, 2);
  ASSERT_EQ(joined.size(), 1u);
  EXPECT_EQ(joined[0].key, 1);
  // Componentwise best across backends.
  EXPECT_EQ(joined[0].rank_values, Tuple({3, 5}));
}

TEST(EntityMergeTest, JoinSkylineFiltersDominatedEntities) {
  std::vector<std::vector<EntityObservation>> obs(1);
  obs[0].push_back({1, {2, 2}});
  obs[0].push_back({2, {3, 3}});  // dominated by entity 1
  obs[0].push_back({3, {1, 4}});
  const auto joined = JoinSkyline(obs, 1);
  ASSERT_EQ(joined.size(), 2u);
  EXPECT_EQ(joined[0].key, 1);
  EXPECT_EQ(joined[1].key, 3);
}

// ---------------------------------------------------------------------------
// End-to-end federated discovery

/// Three independently seeded small catalogs of the same shape.
std::vector<Table> ThreeSites(int64_t n) {
  std::vector<Table> sites;
  for (int s = 1; s <= 3; ++s) {
    dataset::BlueNileOptions o;
    o.num_tuples = n;
    o.seed = static_cast<uint64_t>(s);
    sites.push_back(std::move(dataset::GenerateBlueNile(o)).value());
  }
  return sites;
}

std::set<Tuple> MergedGroundTruth(const std::vector<Table>& sites) {
  Table merged(sites[0].schema());
  for (const Table& t : sites) {
    for (int64_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_TRUE(merged.Append(t.GetTuple(r)).ok());
    }
  }
  const std::vector<int> attrs = merged.schema().ranking_attributes();
  std::set<Tuple> truth;
  for (const TupleId id : skyline::SkylineSFS(merged)) {
    Tuple p(attrs.size());
    for (size_t a = 0; a < attrs.size(); ++a) {
      p[a] = merged.value(id, attrs[a]);
    }
    truth.insert(std::move(p));
  }
  return truth;
}

std::set<Tuple> FederatedValues(const FederatedResult& r) {
  std::set<Tuple> found;
  for (const auto& g : r.skyline) found.insert(g.rank_values);
  return found;
}

TEST(FederatedDiscoveryTest, UnionEqualsMergedSkylineAndNeverPaysMore) {
  const std::vector<Table> sites = ThreeSites(300);
  int64_t sequential = 0;
  std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
  std::vector<interface::HiddenDatabase*> backends;
  for (const Table& t : sites) {
    auto iface = MakeInterface(&t, MakeSumRanking(), 10);
    auto solo = core::RqDbSky(iface.get());
    ASSERT_TRUE(solo.ok()) << solo.status();
    sequential += solo->query_cost;
    ifaces.push_back(MakeInterface(&t, MakeSumRanking(), 10));
    backends.push_back(ifaces.back().get());
  }

  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kUnion;
  opts.round_budget = 32;
  auto r = RunFederatedDiscovery(backends, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->complete);
  EXPECT_FALSE(r->partial_coverage);
  EXPECT_EQ(FederatedValues(*r), MergedGroundTruth(sites));
  // Resume-exact round slicing never re-pays a query, and pruning only
  // subtracts: the federation can never cost more than K solo runs.
  EXPECT_LE(r->total_paid, sequential);
  EXPECT_EQ(r->total_paid + r->total_pruned, sequential);
}

TEST(FederatedDiscoveryTest, ResultIndependentOfThreadCount) {
  const std::vector<Table> sites = ThreeSites(200);
  std::vector<FederatedResult> results;
  for (const int threads : {1, 4}) {
    std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
    std::vector<interface::HiddenDatabase*> backends;
    for (const Table& t : sites) {
      ifaces.push_back(MakeInterface(&t, MakeSumRanking(), 10));
      backends.push_back(ifaces.back().get());
    }
    FederationOptions opts;
    opts.mode = FederationOptions::Mode::kUnion;
    opts.round_budget = 16;
    opts.num_threads = threads;
    auto r = RunFederatedDiscovery(backends, opts);
    ASSERT_TRUE(r.ok()) << r.status();
    results.push_back(std::move(*r));
  }
  EXPECT_EQ(FederatedValues(results[0]), FederatedValues(results[1]));
  ASSERT_EQ(results[0].backends.size(), results[1].backends.size());
  for (size_t i = 0; i < results[0].backends.size(); ++i) {
    EXPECT_EQ(results[0].backends[i].paid_queries,
              results[1].backends[i].paid_queries);
    EXPECT_EQ(results[0].backends[i].pruned_queries,
              results[1].backends[i].pruned_queries);
  }
}

/// Delegating backend that starts failing after `fail_after` queries —
/// a site that goes down mid-federation.
class DyingBackend : public interface::HiddenDatabase {
 public:
  DyingBackend(interface::HiddenDatabase* inner, int64_t fail_after)
      : inner_(inner), fail_after_(fail_after) {}
  const data::Schema& schema() const override { return inner_->schema(); }
  int k() const override { return inner_->k(); }
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override {
    if (executed_ >= fail_after_) {
      return common::Status::IOError("backend died");
    }
    ++executed_;
    return inner_->Execute(q);
  }

 private:
  interface::HiddenDatabase* inner_;
  int64_t fail_after_;
  int64_t executed_ = 0;
};

TEST(FederatedDiscoveryTest, DeadBackendDegradesGracefully) {
  const std::vector<Table> sites = ThreeSites(200);
  std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
  for (const Table& t : sites) {
    ifaces.push_back(MakeInterface(&t, MakeSumRanking(), 10));
  }
  DyingBackend dying(ifaces[1].get(), 12);
  std::vector<interface::HiddenDatabase*> backends = {
      ifaces[0].get(), &dying, ifaces[2].get()};

  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kUnion;
  opts.round_budget = 16;
  auto r = RunFederatedDiscovery(backends, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->partial_coverage);
  EXPECT_FALSE(r->complete);
  ASSERT_EQ(r->backends.size(), 3u);
  EXPECT_TRUE(r->backends[1].failed);
  EXPECT_FALSE(r->backends[1].error.empty());
  EXPECT_TRUE(r->backends[0].complete);
  EXPECT_TRUE(r->backends[2].complete);

  // Anytime guarantee relative to what WAS explored. The dead site's
  // unexplored tail may dominate reported vectors (that is what the
  // partial_coverage flag warns about), but the two complete sites are
  // fully accounted for:
  //  * nothing either complete site holds dominates a reported vector,
  //  * every skyline vector of their union is reported, or was knocked
  //    out by a reported candidate the dead site surfaced in time.
  const std::set<Tuple> alive_truth =
      MergedGroundTruth({sites[0], sites[2]});
  const std::set<Tuple> reported = FederatedValues(*r);
  std::vector<int> attrs(r->ranking_attr_names.size());
  std::iota(attrs.begin(), attrs.end(), 0);
  for (const Tuple& v : reported) {
    for (const Tuple& s : alive_truth) {
      EXPECT_NE(skyline::Compare(s, v, attrs),
                skyline::DomRelation::kDominates)
          << "a complete site's skyline dominates a reported vector";
    }
  }
  for (const Tuple& s : alive_truth) {
    bool covered = reported.count(s) > 0;
    for (auto it = reported.begin(); !covered && it != reported.end();
         ++it) {
      covered = skyline::Compare(*it, s, attrs) ==
                skyline::DomRelation::kDominates;
    }
    EXPECT_TRUE(covered)
        << "complete sites' skyline vector neither reported nor beaten";
  }
}

TEST(FederatedDiscoveryTest, RejectsMismatchedRankingSchemas) {
  Table a(TwoAttrRqSchema());
  ASSERT_TRUE(a.Append({1, 2}).ok());
  auto other_schema = std::move(data::Schema::Create(
                                    {{"x", data::AttributeKind::kRanking,
                                      data::InterfaceType::kRQ, 0, 100},
                                     {"b", data::AttributeKind::kRanking,
                                      data::InterfaceType::kRQ, 0, 100}}))
                          .value();
  Table b(std::move(other_schema));
  ASSERT_TRUE(b.Append({1, 2}).ok());
  auto ia = MakeInterface(&a, MakeSumRanking(), 5);
  auto ib = MakeInterface(&b, MakeSumRanking(), 5);
  FederationOptions opts;
  auto r = RunFederatedDiscovery({ia.get(), ib.get()}, opts);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

data::Schema KeyedSchema() {
  return std::move(data::Schema::Create(
                       {{"price", data::AttributeKind::kRanking,
                         data::InterfaceType::kRQ, 0, 100},
                        {"stops", data::AttributeKind::kRanking,
                         data::InterfaceType::kRQ, 0, 100},
                        {"key", data::AttributeKind::kFiltering,
                         data::InterfaceType::kFilterEquality, 0, 9}}))
      .value();
}

TEST(FederatedDiscoveryTest, JoinModeInnerJoinsOnSharedKey) {
  // Keys 1..3 on site A, keys 2..4 on site B: only 2 and 3 join.
  Table a(KeyedSchema());
  ASSERT_TRUE(a.Append({10, 10, 1}).ok());
  ASSERT_TRUE(a.Append({20, 5, 2}).ok());
  ASSERT_TRUE(a.Append({5, 20, 3}).ok());
  Table b(KeyedSchema());
  ASSERT_TRUE(b.Append({15, 8, 2}).ok());
  ASSERT_TRUE(b.Append({8, 15, 3}).ok());
  ASSERT_TRUE(b.Append({1, 1, 4}).ok());
  auto ia = MakeInterface(&a, MakeSumRanking(), 5);
  auto ib = MakeInterface(&b, MakeSumRanking(), 5);

  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kJoin;
  opts.join_attr = "key";
  auto r = RunFederatedDiscovery({ia.get(), ib.get()}, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->joined.size(), 2u);
  EXPECT_EQ(r->joined[0].key, 2);
  EXPECT_EQ(r->joined[0].rank_values, Tuple({15, 5}));
  EXPECT_EQ(r->joined[1].key, 3);
  EXPECT_EQ(r->joined[1].rank_values, Tuple({5, 15}));
}

// ---------------------------------------------------------------------------
// Durable sessions: round-barrier checkpoints, resume, backend revival.

/// Delegating backend that records the signature of every query it is
/// actually asked (pruned queries never get here), so resume tests can
/// prove the two lives of a resumed session pay for disjoint queries.
class RecordingBackend : public interface::HiddenDatabase {
 public:
  explicit RecordingBackend(interface::HiddenDatabase* inner)
      : inner_(inner) {}
  const data::Schema& schema() const override { return inner_->schema(); }
  int k() const override { return inner_->k(); }
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override {
    signatures_.push_back(q.Signature());
    return inner_->Execute(q);
  }
  const std::vector<std::string>& signatures() const { return signatures_; }

 private:
  interface::HiddenDatabase* inner_;
  std::vector<std::string> signatures_;
};

struct RecordedFleet {
  std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
  std::vector<std::unique_ptr<RecordingBackend>> recorders;
  std::vector<interface::HiddenDatabase*> backends;
};

RecordedFleet MakeFleet(const std::vector<Table>& sites) {
  RecordedFleet f;
  for (const Table& t : sites) {
    f.ifaces.push_back(MakeInterface(&t, MakeSumRanking(), 10));
    f.recorders.push_back(
        std::make_unique<RecordingBackend>(f.ifaces.back().get()));
    f.backends.push_back(f.recorders.back().get());
  }
  return f;
}

/// The durable-session contract, for whichever driver `algorithm`
/// resolves to on `sites`:
///  * every round barrier's FederationSessionState — embedded
///    DiscoveryRun and frontier codecs included — round-trips through
///    Encode/Decode byte-identically,
///  * a fresh coordinator resumed from a barrier finishes with the
///    uninterrupted run's exact skyline, paid totals, and round count,
///  * the resumed life never re-pays a query the first life paid for.
void CheckDurableResume(const std::vector<Table>& sites,
                        const std::string& algorithm) {
  FederationOptions base;
  base.mode = FederationOptions::Mode::kUnion;
  base.round_budget = 16;
  base.algorithm = algorithm;

  // Reference: one uninterrupted run.
  RecordedFleet ref_fleet = MakeFleet(sites);
  auto ref = RunFederatedDiscovery(ref_fleet.backends, base);
  ASSERT_TRUE(ref.ok()) << ref.status();
  ASSERT_TRUE(ref->complete);

  // First life: identical run stopped after three rounds, every barrier
  // captured.
  std::vector<recovery::FederationSessionState> barriers;
  RecordedFleet first = MakeFleet(sites);
  FederationOptions stopped_opts = base;
  stopped_opts.max_rounds = 3;
  stopped_opts.on_round_checkpoint =
      [&barriers](const recovery::FederationSessionState& s) {
        barriers.push_back(s);
        return common::Status::OK();
      };
  auto stopped = RunFederatedDiscovery(first.backends, stopped_opts);
  ASSERT_TRUE(stopped.ok()) << stopped.status();
  ASSERT_EQ(barriers.size(), 3u);

  // Codec round trip at every round boundary. The frontier blob is the
  // part a corrupted byte would silently derail, so it is compared
  // explicitly on top of whole-state re-encode equality.
  bool saw_paused_frontier = false;
  for (const auto& s : barriers) {
    const std::string blob = recovery::EncodeFederationState(s);
    auto decoded = recovery::DecodeFederationState(blob);
    ASSERT_TRUE(decoded.ok()) << decoded.status();
    EXPECT_EQ(recovery::EncodeFederationState(*decoded), blob);
    ASSERT_EQ(decoded->backends.size(), s.backends.size());
    for (size_t i = 0; i < s.backends.size(); ++i) {
      EXPECT_EQ(decoded->backends[i].has_resume, s.backends[i].has_resume);
      EXPECT_EQ(decoded->backends[i].frontier, s.backends[i].frontier);
      EXPECT_EQ(decoded->backends[i].run_state, s.backends[i].run_state);
      saw_paused_frontier |= s.backends[i].has_resume;
    }
  }
  // Round slicing must actually have paused someone mid-traversal, or
  // this test is not exercising the frontier codec at all.
  EXPECT_TRUE(saw_paused_frontier);

  // Second life: fresh backends resume from the last barrier — through
  // the decoded copy, so the test proves the PERSISTED form carries
  // everything the coordinator needs.
  auto restored =
      recovery::DecodeFederationState(
          recovery::EncodeFederationState(barriers.back()));
  ASSERT_TRUE(restored.ok()) << restored.status();
  RecordedFleet second = MakeFleet(sites);
  FederationOptions resume_opts = base;
  resume_opts.resume_state = &*restored;
  auto resumed = RunFederatedDiscovery(second.backends, resume_opts);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->complete);
  EXPECT_FALSE(resumed->partial_coverage);
  EXPECT_EQ(FederatedValues(*resumed), FederatedValues(*ref));
  // Accounting is cumulative across lives and must land exactly on the
  // uninterrupted totals: nothing lost, nothing double-counted.
  EXPECT_EQ(resumed->total_paid, ref->total_paid);
  EXPECT_EQ(resumed->total_pruned, ref->total_pruned);
  EXPECT_EQ(resumed->rounds, ref->rounds);

  // Zero replayed backend queries: the two lives' paid queries are
  // disjoint per backend.
  for (size_t b = 0; b < sites.size(); ++b) {
    const auto& life1 = first.recorders[b]->signatures();
    const std::set<std::string> paid_once(life1.begin(), life1.end());
    for (const std::string& sig : second.recorders[b]->signatures()) {
      EXPECT_EQ(paid_once.count(sig), 0u)
          << "backend " << b << " re-paid a first-life query on resume";
    }
  }
}

TEST(FederatedDurabilityTest, RqResumeReplaysNothingAndMatches) {
  // Blue Nile sites are all-RQ, so "auto" resolves the RQ driver: this
  // exercises the RQ stack frontier codec at round boundaries.
  CheckDurableResume(ThreeSites(200), "auto");
}

TEST(FederatedDurabilityTest, SqResumeReplaysNothingAndMatches) {
  // SQ-interface sites force the SQ driver and its BFS queue codec.
  std::vector<Table> sites;
  for (int s = 21; s <= 23; ++s) {
    dataset::SyntheticOptions o;
    o.num_tuples = 300;
    o.num_attributes = 3;
    o.domain_size = 8;
    o.distribution = dataset::Distribution::kAntiCorrelated;
    o.iface = data::InterfaceType::kSQ;
    o.seed = static_cast<uint64_t>(s);
    sites.push_back(std::move(dataset::GenerateSynthetic(o)).value());
  }
  CheckDurableResume(sites, "sq");
}

TEST(FederatedDurabilityTest, CheckpointFailureAbortsRun) {
  // A session that cannot persist must not pretend to be durable: the
  // first failed round checkpoint surfaces as the run's own error.
  const std::vector<Table> sites = ThreeSites(100);
  RecordedFleet fleet = MakeFleet(sites);
  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kUnion;
  opts.round_budget = 16;
  opts.on_round_checkpoint =
      [](const recovery::FederationSessionState&) {
        return common::Status::IOError("disk full");
      };
  auto r = RunFederatedDiscovery(fleet.backends, opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(FederatedDurabilityTest, ResumeValidatesBackendSet) {
  // A checkpoint from a three-backend session must not be adopted by a
  // coordinator connected to two.
  const std::vector<Table> sites = ThreeSites(100);
  std::vector<recovery::FederationSessionState> barriers;
  RecordedFleet first = MakeFleet(sites);
  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kUnion;
  opts.round_budget = 16;
  opts.max_rounds = 1;
  opts.on_round_checkpoint =
      [&barriers](const recovery::FederationSessionState& s) {
        barriers.push_back(s);
        return common::Status::OK();
      };
  ASSERT_TRUE(RunFederatedDiscovery(first.backends, opts).ok());
  ASSERT_FALSE(barriers.empty());

  const std::vector<Table> fewer = {sites[0], sites[1]};
  RecordedFleet second = MakeFleet(fewer);
  FederationOptions resume_opts;
  resume_opts.mode = FederationOptions::Mode::kUnion;
  resume_opts.round_budget = 16;
  resume_opts.resume_state = &barriers.back();
  auto r = RunFederatedDiscovery(second.backends, resume_opts);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

/// Delegating backend that is dark for a window of Execute calls — the
/// failed attempts count too — then answers again: a site rebooting
/// mid-federation. Counting calls instead of wall clock keeps the
/// kill/revive schedule exactly reproducible.
class BlackoutBackend : public interface::HiddenDatabase {
 public:
  BlackoutBackend(interface::HiddenDatabase* inner, int64_t dark_from,
                  int64_t dark_until)
      : inner_(inner), dark_from_(dark_from), dark_until_(dark_until) {}
  const data::Schema& schema() const override { return inner_->schema(); }
  int k() const override { return inner_->k(); }
  common::Result<interface::QueryResult> Execute(
      const interface::Query& q) override {
    const int64_t call = calls_++;
    if (call >= dark_from_ && call < dark_until_) {
      return common::Status::Unavailable("backend dark");
    }
    return inner_->Execute(q);
  }

 private:
  interface::HiddenDatabase* inner_;
  int64_t dark_from_;
  int64_t dark_until_;
  int64_t calls_ = 0;
};

TEST(FederatedDiscoveryTest, RevivedBackendRestoresFullCoverage) {
  const std::vector<Table> sites = ThreeSites(200);
  std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
  for (const Table& t : sites) {
    ifaces.push_back(MakeInterface(&t, MakeSumRanking(), 10));
  }
  // Dark for calls [12, 20): the first failure degrades the backend, the
  // next 7 re-probes fail into backoff, the 8th probe answers again.
  BlackoutBackend flaky(ifaces[1].get(), 12, 20);
  std::vector<interface::HiddenDatabase*> backends = {
      ifaces[0].get(), &flaky, ifaces[2].get()};

  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kUnion;
  opts.round_budget = 16;
  opts.max_probe_attempts = 100;
  opts.probe_backoff_rounds = 1;
  auto r = RunFederatedDiscovery(backends, opts);
  ASSERT_TRUE(r.ok()) << r.status();

  // Reintegration upgrades coverage back to FULL, and the result is the
  // no-fault result — the outage cost retries, not answers.
  EXPECT_TRUE(r->complete);
  EXPECT_FALSE(r->partial_coverage);
  ASSERT_EQ(r->backends.size(), 3u);
  EXPECT_FALSE(r->backends[1].failed);
  EXPECT_TRUE(r->backends[1].complete);
  EXPECT_EQ(r->backends[1].health, federation::BackendHealth::kHealthy);
  EXPECT_GE(r->backends[1].recoveries, 1);
  EXPECT_EQ(FederatedValues(*r), MergedGroundTruth(sites));
}

TEST(FederatedDiscoveryTest, ProbeBudgetExhaustionStillDegradesGracefully) {
  // A backend that never comes back must burn its probe budget and land
  // DEAD — the pre-health-machine partial-coverage contract.
  const std::vector<Table> sites = ThreeSites(100);
  std::vector<std::unique_ptr<interface::TopKInterface>> ifaces;
  for (const Table& t : sites) {
    ifaces.push_back(MakeInterface(&t, MakeSumRanking(), 10));
  }
  BlackoutBackend dead(ifaces[1].get(), 8,
                       std::numeric_limits<int64_t>::max());
  std::vector<interface::HiddenDatabase*> backends = {
      ifaces[0].get(), &dead, ifaces[2].get()};

  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kUnion;
  opts.round_budget = 16;
  opts.max_probe_attempts = 2;
  opts.probe_backoff_rounds = 1;
  auto r = RunFederatedDiscovery(backends, opts);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->partial_coverage);
  EXPECT_FALSE(r->complete);
  ASSERT_EQ(r->backends.size(), 3u);
  EXPECT_TRUE(r->backends[1].failed);
  EXPECT_EQ(r->backends[1].health, federation::BackendHealth::kDead);
  EXPECT_EQ(r->backends[1].recoveries, 0);
  EXPECT_TRUE(r->backends[0].complete);
  EXPECT_TRUE(r->backends[2].complete);
}

TEST(FederatedDiscoveryTest, JoinNeedsJoinAttr) {
  Table a(KeyedSchema());
  ASSERT_TRUE(a.Append({10, 10, 1}).ok());
  auto ia = MakeInterface(&a, MakeSumRanking(), 5);
  FederationOptions opts;
  opts.mode = FederationOptions::Mode::kJoin;
  auto r = RunFederatedDiscovery({ia.get()}, opts);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

}  // namespace
}  // namespace hdsky
