// End-to-end tests for the network service: loopback equivalence of
// discovery over RemoteHiddenDatabase vs in-process (identical skyline
// AND identical external-query accounting), honest status propagation,
// per-client budgets, connection limits, cache stacking, and robustness
// under the deterministic fault-injection proxy — the "never hangs,
// never crashes, never double-counts" contract.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/concurrent_caching_database.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/fault_proxy.h"
#include "service/remote_database.h"
#include "service/server.h"

namespace hdsky {
namespace service {
namespace {

using interface::Query;
using interface::TopKInterface;
using interface::TopKOptions;

data::Table MakeTable(data::InterfaceType iface, int64_t n = 400) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = n;
  gen.num_attributes = 3;
  gen.domain_size = 30;
  gen.iface = iface;
  gen.seed = 1234;
  return std::move(dataset::GenerateSynthetic(gen)).value();
}

/// A larger, higher-cardinality table for the probabilistic fault tests:
/// RQ-DB-SKY issues ~110 queries here (vs ~4 on MakeTable()), so per-frame
/// fault probabilities of a few percent fire with certainty in practice.
data::Table MakeBusyTable() {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 1000;
  gen.num_attributes = 4;
  gen.domain_size = 1000;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 1234;
  return std::move(dataset::GenerateSynthetic(gen)).value();
}

std::unique_ptr<TopKInterface> MakeBackend(const data::Table* t,
                                           int64_t budget = 0) {
  TopKOptions opts;
  opts.k = 5;
  opts.query_budget = budget;
  return std::move(
             TopKInterface::Create(t, interface::MakeSumRanking(), opts))
      .value();
}

/// Fast deterministic client options for tests.
RemoteHiddenDatabase::Options FastClient(uint64_t session = 99) {
  RemoteHiddenDatabase::Options o;
  o.connect_timeout_ms = 2000;
  o.io_timeout_ms = 2000;
  o.max_attempts = 6;
  o.initial_backoff_ms = 1;
  o.max_backoff_ms = 8;
  o.session_id = session;
  o.jitter_seed = 7;
  return o;
}

/// Runs `algo` twice — in-process and over a loopback server — and
/// demands identical skylines AND identical backend query accounting.
template <typename Algo>
void ExpectLoopbackEquivalence(data::InterfaceType iface_type,
                               Algo&& algo) {
  const data::Table t = MakeTable(iface_type);

  auto local_backend = MakeBackend(&t);
  auto local = algo(static_cast<interface::HiddenDatabase*>(
      local_backend.get()));
  ASSERT_TRUE(local.ok()) << local.status().ToString();

  auto served_backend = MakeBackend(&t);
  auto server =
      std::move(DatabaseServer::Start(served_backend.get(), {})).value();
  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", server->port(), FastClient()))
                    .value();
  EXPECT_EQ(remote->schema().ToString(), t.schema().ToString());
  EXPECT_EQ(remote->k(), 5);

  auto over_wire = algo(
      static_cast<interface::HiddenDatabase*>(remote.get()));
  ASSERT_TRUE(over_wire.ok()) << over_wire.status().ToString();

  EXPECT_EQ(over_wire->skyline_ids, local->skyline_ids);
  EXPECT_EQ(over_wire->query_cost, local->query_cost);
  EXPECT_EQ(over_wire->complete, local->complete);
  // The remote backend saw exactly what the local one did: the network
  // layer added zero and lost zero queries.
  EXPECT_EQ(served_backend->stats().queries_issued,
            local_backend->stats().queries_issued);
  EXPECT_EQ(served_backend->stats().tuples_returned,
            local_backend->stats().tuples_returned);
  EXPECT_EQ(remote->stats().remote_queries, local->query_cost);
  EXPECT_EQ(remote->stats().retries, 0);

  server->Stop();
  const DatabaseServer::Stats stats = server->stats();
  EXPECT_EQ(stats.queries_served, local->query_cost);
  EXPECT_EQ(stats.queries_replayed, 0);
  EXPECT_EQ(stats.protocol_errors, 0);
}

TEST(ServiceLoopbackTest, SqDbSkyEquivalence) {
  ExpectLoopbackEquivalence(data::InterfaceType::kSQ, [](auto* db) {
    return core::SqDbSky(db);
  });
}

TEST(ServiceLoopbackTest, RqDbSkyEquivalence) {
  ExpectLoopbackEquivalence(data::InterfaceType::kRQ, [](auto* db) {
    return core::RqDbSky(db);
  });
}

TEST(ServiceLoopbackTest, BackendBudgetSurfacesAsAnytimeResult) {
  // A budget on the *backend* must reach the remote algorithm as the
  // same ResourceExhausted anytime signal it sees in-process.
  const data::Table t = MakeTable(data::InterfaceType::kRQ);

  auto ref_backend = MakeBackend(&t);
  auto ref = core::RqDbSky(ref_backend.get());
  ASSERT_TRUE(ref.ok());
  const int64_t half = ref->query_cost / 2;
  ASSERT_GT(half, 0);

  auto local_backend = MakeBackend(&t, half);
  auto local = core::RqDbSky(local_backend.get());
  ASSERT_TRUE(local.ok());
  EXPECT_FALSE(local->complete);

  auto served_backend = MakeBackend(&t, half);
  auto server =
      std::move(DatabaseServer::Start(served_backend.get(), {})).value();
  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", server->port(), FastClient()))
                    .value();
  auto over_wire = core::RqDbSky(remote.get());
  ASSERT_TRUE(over_wire.ok());
  EXPECT_FALSE(over_wire->complete);
  EXPECT_EQ(over_wire->skyline_ids, local->skyline_ids);
  EXPECT_EQ(over_wire->query_cost, local->query_cost);
}

TEST(ServiceLoopbackTest, PerClientBudgetIsEnforcedAndReported) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  auto backend = MakeBackend(&t);
  DatabaseServer::Options opts;
  opts.per_client_query_budget = 3;
  auto server =
      std::move(DatabaseServer::Start(backend.get(), opts)).value();

  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", server->port(), FastClient()))
                    .value();
  EXPECT_EQ(remote->server_remaining_budget(), 3);

  for (int i = 0; i < 3; ++i) {
    Query q(t.schema().num_attributes());
    q.AddAtMost(0, 5 + i);
    ASSERT_TRUE(remote->Execute(q).ok()) << i;
  }
  Query q(t.schema().num_attributes());
  q.AddAtMost(0, 20);
  auto refused = remote->Execute(q);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted());
  EXPECT_EQ(backend->stats().queries_issued, 3);

  // A fresh session id gets a fresh budget; the exhausted session stays
  // exhausted across reconnects.
  auto fresh = std::move(RemoteHiddenDatabase::Connect(
                             "127.0.0.1", server->port(), FastClient(1001)))
                   .value();
  EXPECT_EQ(fresh->server_remaining_budget(), 3);
  auto resumed = std::move(RemoteHiddenDatabase::Connect(
                               "127.0.0.1", server->port(), FastClient()))
                     .value();
  EXPECT_EQ(resumed->server_remaining_budget(), 0);
  EXPECT_EQ(server->stats().budget_rejections, 1);
}

TEST(ServiceLoopbackTest, ConnectionLimitThrottlesExtraClients) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 100);
  auto backend = MakeBackend(&t);
  DatabaseServer::Options opts;
  opts.max_connections = 1;
  auto server =
      std::move(DatabaseServer::Start(backend.get(), opts)).value();

  auto first = std::move(RemoteHiddenDatabase::Connect(
                             "127.0.0.1", server->port(), FastClient(1)))
                   .value();
  // The slot is held; a second client is bounced with a transient
  // throttle, which Connect reports as retryable Unavailable.
  RemoteHiddenDatabase::Options second_opts = FastClient(2);
  auto second = RemoteHiddenDatabase::Connect("127.0.0.1", server->port(),
                                              second_opts);
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsUnavailable());
  EXPECT_NE(second.status().ToString().find("throttled"),
            std::string::npos)
      << second.status().ToString();
  EXPECT_GE(server->stats().connections_rejected, 1);

  // Releasing the first client frees the slot.
  first.reset();
  bool reconnected = false;
  for (int i = 0; i < 50 && !reconnected; ++i) {
    reconnected = RemoteHiddenDatabase::Connect("127.0.0.1",
                                                server->port(),
                                                second_opts)
                      .ok();
  }
  EXPECT_TRUE(reconnected);
}

TEST(ServiceLoopbackTest, CacheStackShortCircuitsTheNetwork) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 100);
  auto backend = MakeBackend(&t);
  auto server =
      std::move(DatabaseServer::Start(backend.get(), {})).value();
  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", server->port(), FastClient()))
                    .value();
  interface::ConcurrentCachingDatabase cached(remote.get());

  Query q(t.schema().num_attributes());
  q.AddAtMost(0, 10);
  auto first = cached.Execute(q);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto again = cached.Execute(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->ids, first->ids);
  }
  EXPECT_EQ(cached.hits(), 5);
  EXPECT_EQ(cached.misses(), 1);
  // Only the miss crossed the wire.
  EXPECT_EQ(remote->stats().remote_queries, 1);
  EXPECT_EQ(backend->stats().queries_issued, 1);
}

TEST(ServiceLoopbackTest, ServerSurvivesGarbageAndKeepsServing) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 100);
  auto backend = MakeBackend(&t);
  auto server =
      std::move(DatabaseServer::Start(backend.get(), {})).value();

  {
    auto raw = net::Socket::Connect("127.0.0.1", server->port(), 2000);
    ASSERT_TRUE(raw.ok());
    const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_TRUE(raw->SendAll(garbage, sizeof(garbage) - 1).ok());
  }  // closed; the handler sees a malformed header and drops us

  // A well-behaved client still gets full service afterwards.
  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", server->port(), FastClient()))
                    .value();
  Query q(t.schema().num_attributes());
  q.AddAtMost(0, 10);
  EXPECT_TRUE(remote->Execute(q).ok());
  server->Stop();
  EXPECT_GE(server->stats().protocol_errors, 1);
}

// --- fault injection -----------------------------------------------------

struct FaultRunResult {
  core::DiscoveryResult discovery;
  RemoteHiddenDatabase::Stats client_stats;
  FaultInjectingProxy::Stats proxy_stats;
  DatabaseServer::Stats server_stats;
  interface::AccessStats backend_stats;
};

/// Runs RQ-DB-SKY through proxy(policy) -> server -> backend and returns
/// every layer's accounting. Asserts the run *completed correctly*.
FaultRunResult RunRqThroughFaults(const FaultInjectingProxy::Policy& policy,
                                  const data::Table& t) {
  auto backend = MakeBackend(&t);
  auto server =
      std::move(DatabaseServer::Start(backend.get(), {})).value();
  auto proxy = std::move(FaultInjectingProxy::Start(
                             "127.0.0.1", server->port(), policy))
                   .value();
  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", proxy->port(), FastClient()))
                    .value();
  auto result = core::RqDbSky(remote.get());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  FaultRunResult out;
  out.discovery = std::move(result).value();
  out.client_stats = remote->stats();
  proxy->Stop();
  server->Stop();
  out.proxy_stats = proxy->stats();
  out.server_stats = server->stats();
  out.backend_stats = backend->stats();
  return out;
}

TEST(FaultInjectionTest, SurvivesDropsAndTruncationsWithExactAccounting) {
  const data::Table t = MakeBusyTable();
  auto clean_backend = MakeBackend(&t);
  auto clean = core::RqDbSky(clean_backend.get());
  ASSERT_TRUE(clean.ok());

  FaultInjectingProxy::Policy policy;
  policy.seed = 11;
  policy.drop_prob = 0.02;
  policy.truncate_prob = 0.02;
  const FaultRunResult run = RunRqThroughFaults(policy, t);

  EXPECT_EQ(run.discovery.skyline_ids, clean->skyline_ids);
  EXPECT_TRUE(run.discovery.complete);
  // Faults actually fired (deterministic seed over thousands of frames)…
  EXPECT_GT(run.proxy_stats.frames_dropped +
                run.proxy_stats.frames_truncated,
            0);
  EXPECT_GT(run.client_stats.retries, 0);
  // Every retry slept a jittered backoff and every frame was metered.
  EXPECT_GT(run.client_stats.backoff_ms, 0);
  EXPECT_GT(run.client_stats.bytes_sent, 0);
  EXPECT_GT(run.client_stats.bytes_received, 0);
  // …yet the backend executed each query exactly once: retried sequences
  // were replayed from the server's session cache, never re-executed.
  EXPECT_EQ(run.backend_stats.queries_issued,
            clean_backend->stats().queries_issued);
  EXPECT_EQ(run.discovery.query_cost, clean->query_cost);
  EXPECT_EQ(run.server_stats.queries_served, clean->query_cost);
}

TEST(FaultInjectionTest, AbsorbsSpuriousRateLimitsWithBackoff) {
  const data::Table t = MakeBusyTable();
  auto clean_backend = MakeBackend(&t);
  auto clean = core::RqDbSky(clean_backend.get());
  ASSERT_TRUE(clean.ok());

  FaultInjectingProxy::Policy policy;
  policy.seed = 5;
  policy.rate_limit_prob = 0.05;
  const FaultRunResult run = RunRqThroughFaults(policy, t);

  EXPECT_EQ(run.discovery.skyline_ids, clean->skyline_ids);
  EXPECT_GT(run.proxy_stats.rate_limits_injected, 0);
  EXPECT_EQ(run.client_stats.rate_limited,
            run.proxy_stats.rate_limits_injected);
  EXPECT_EQ(run.backend_stats.queries_issued,
            clean_backend->stats().queries_issued);
  EXPECT_EQ(run.discovery.query_cost, clean->query_cost);
}

TEST(FaultInjectionTest, SurvivesDelaysWithinTimeout) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 60);
  FaultInjectingProxy::Policy policy;
  policy.seed = 3;
  policy.delay_prob = 0.05;
  policy.delay_ms = 20;  // well under the client's 2 s I/O timeout
  const FaultRunResult run = RunRqThroughFaults(policy, t);
  EXPECT_TRUE(run.discovery.complete);
  EXPECT_GT(run.proxy_stats.delays_injected, 0);
}

TEST(FaultInjectionTest, TotalBlackoutFailsFastAndDescriptively) {
  // Every frame dropped: the client must give up with a descriptive
  // error — not hang, not crash.
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 60);
  auto backend = MakeBackend(&t);
  auto server =
      std::move(DatabaseServer::Start(backend.get(), {})).value();
  FaultInjectingProxy::Policy policy;
  policy.seed = 2;
  policy.drop_prob = 1.0;
  auto proxy = std::move(FaultInjectingProxy::Start(
                             "127.0.0.1", server->port(), policy))
                   .value();
  auto remote = RemoteHiddenDatabase::Connect("127.0.0.1", proxy->port(),
                                              FastClient());
  ASSERT_FALSE(remote.ok());
  EXPECT_TRUE(remote.status().IsIOError());
  EXPECT_EQ(backend->stats().queries_issued, 0);
}

TEST(FaultInjectionTest, PermanentRateLimitGivesUpDescriptively) {
  // The handshake passes (Hello is not a Query) but every query is
  // bounced: retries must exhaust and report what happened.
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 60);
  auto backend = MakeBackend(&t);
  auto server =
      std::move(DatabaseServer::Start(backend.get(), {})).value();
  FaultInjectingProxy::Policy policy;
  policy.seed = 2;
  policy.rate_limit_prob = 1.0;
  auto proxy = std::move(FaultInjectingProxy::Start(
                             "127.0.0.1", server->port(), policy))
                   .value();
  RemoteHiddenDatabase::Options opts = FastClient();
  opts.max_attempts = 3;
  auto remote = std::move(RemoteHiddenDatabase::Connect(
                              "127.0.0.1", proxy->port(), opts))
                    .value();
  Query q(t.schema().num_attributes());
  q.AddAtMost(0, 10);
  auto result = remote->Execute(q);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsUnavailable());
  EXPECT_NE(result.status().ToString().find("3 attempts"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_EQ(remote->stats().rate_limited, 3);
  EXPECT_EQ(backend->stats().queries_issued, 0);
}

TEST(FaultInjectionTest, RejectsInvalidProbabilities) {
  FaultInjectingProxy::Policy policy;
  policy.drop_prob = 1.5;
  auto proxy = FaultInjectingProxy::Start("127.0.0.1", 1, policy);
  EXPECT_FALSE(proxy.ok());
  EXPECT_TRUE(proxy.status().IsInvalidArgument());
}

}  // namespace
}  // namespace service
}  // namespace hdsky
