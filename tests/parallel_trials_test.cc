// Determinism of the parallel trial harness (bench::RunTrialsParallel):
// fanning SQ-DB-SKY and RQ-DB-SKY trials across 1, 4, and 8 threads must
// yield byte-identical aggregate results and identical total query
// counts — the guarantee that lets every figure bench honor
// HDSKY_THREADS without perturbing the paper's numbers.

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"

namespace hdsky {
namespace {

constexpr int64_t kNumTrials = 12;

// One fully self-contained trial: its own dataset, ranking, and
// interface, all seeded from the trial index alone.
data::Table TrialTable(int64_t trial) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 400 + 50 * trial;
  gen.num_attributes = 3;
  gen.domain_size = 64;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 9000 + static_cast<uint64_t>(trial);
  return std::move(dataset::GenerateSynthetic(gen)).value();
}

struct TrialOutcome {
  std::string bytes;    // full serialization of the trial's result
  int64_t cost = 0;     // reported query cost
  int64_t issued = 0;   // the interface's own accounting
};

// Serializes everything observable about a trial: the discovered
// skyline (ids and tuples), the reported cost, and the interface's own
// query accounting. Byte-compared across thread counts below.
template <typename Algo>
TrialOutcome RunTrial(int64_t trial, Algo algo) {
  const data::Table t = TrialTable(trial);
  auto iface = std::move(interface::TopKInterface::Create(
                             &t,
                             interface::MakeLayeredRandomRanking(
                                 700 + static_cast<uint64_t>(trial)),
                             {.k = 3}))
                   .value();
  auto result = algo(iface.get());
  EXPECT_TRUE(result.ok());
  TrialOutcome outcome;
  outcome.cost = result->query_cost;
  outcome.issued = iface->stats().queries_issued;
  std::ostringstream out;
  out << "trial " << trial << " cost " << result->query_cost
      << " issued " << outcome.issued << " complete "
      << result->complete << " skyline";
  for (size_t i = 0; i < result->skyline.size(); ++i) {
    out << " #" << result->skyline_ids[i] << ":";
    for (data::Value v : result->skyline[i]) out << v << ",";
  }
  out << "\n";
  outcome.bytes = out.str();
  return outcome;
}

struct Aggregate {
  std::string bytes;         // concatenated per-trial serializations
  int64_t total_cost = 0;    // summed reported query costs
  int64_t total_issued = 0;  // summed interface-side query counts
};

template <typename Algo>
Aggregate RunAll(int threads, Algo algo) {
  const std::vector<TrialOutcome> per_trial = bench::RunTrialsParallel(
      kNumTrials,
      [&](int64_t trial) { return RunTrial(trial, algo); }, threads);
  Aggregate agg;
  for (const TrialOutcome& o : per_trial) {
    agg.bytes += o.bytes;
    agg.total_cost += o.cost;
    agg.total_issued += o.issued;
  }
  return agg;
}

TEST(ParallelTrialsTest, SqDbSkyIsThreadCountInvariant) {
  auto sq = [](interface::TopKInterface* iface) {
    return core::SqDbSky(iface);
  };
  const Aggregate serial = RunAll(1, sq);
  ASSERT_FALSE(serial.bytes.empty());
  ASSERT_GT(serial.total_cost, 0);
  for (int threads : {4, 8}) {
    const Aggregate parallel = RunAll(threads, sq);
    EXPECT_EQ(parallel.bytes, serial.bytes) << "threads=" << threads;
    EXPECT_EQ(parallel.total_cost, serial.total_cost)
        << "threads=" << threads;
  }
}

TEST(ParallelTrialsTest, RqDbSkyIsThreadCountInvariant) {
  auto rq = [](interface::TopKInterface* iface) {
    return core::RqDbSky(iface);
  };
  const Aggregate serial = RunAll(1, rq);
  ASSERT_FALSE(serial.bytes.empty());
  ASSERT_GT(serial.total_cost, 0);
  for (int threads : {4, 8}) {
    const Aggregate parallel = RunAll(threads, rq);
    EXPECT_EQ(parallel.bytes, serial.bytes) << "threads=" << threads;
    EXPECT_EQ(parallel.total_cost, serial.total_cost)
        << "threads=" << threads;
  }
}

TEST(ParallelTrialsTest, ResultsArriveInTrialOrder) {
  const std::vector<int64_t> out = bench::RunTrialsParallel(
      100, [](int64_t i) { return i * 3; }, 8);
  ASSERT_EQ(out.size(), 100u);
  for (int64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)], i * 3);
  }
}

}  // namespace
}  // namespace hdsky
