// Unit tests for dataset/: generators (cardinality, domains, correlation
// structure, determinism), the Theorem-1 construction, and CSV roundtrip.

#include <cstdio>
#include <set>

#include <gtest/gtest.h>

#include "dataset/blue_nile.h"
#include "dataset/csv.h"
#include "dataset/flights_on_time.h"
#include "dataset/google_flights.h"
#include "dataset/small_domain.h"
#include "dataset/synthetic.h"
#include "dataset/worst_case.h"
#include "dataset/yahoo_autos.h"
#include "skyline/compute.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace dataset {
namespace {

using data::Table;
using data::TupleId;
using data::Value;

double Correlation(const Table& t, int a, int b) {
  const int64_t n = t.num_rows();
  double ma = 0, mb = 0;
  for (int64_t r = 0; r < n; ++r) {
    ma += static_cast<double>(t.value(r, a));
    mb += static_cast<double>(t.value(r, b));
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (int64_t r = 0; r < n; ++r) {
    const double da = static_cast<double>(t.value(r, a)) - ma;
    const double db = static_cast<double>(t.value(r, b)) - mb;
    cov += da * db;
    va += da * da;
    vb += db * db;
  }
  return cov / std::sqrt(va * vb);
}

TEST(SyntheticTest, CardinalityAndDomain) {
  SyntheticOptions o;
  o.num_tuples = 500;
  o.num_attributes = 3;
  o.domain_size = 10;
  const Table t = std::move(GenerateSynthetic(o)).value();
  EXPECT_EQ(t.num_rows(), 500);
  EXPECT_EQ(t.schema().num_attributes(), 3);
  for (int64_t r = 0; r < 500; ++r) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(t.value(r, a), 0);
      EXPECT_LT(t.value(r, a), 10);
    }
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticOptions o;
  o.num_tuples = 100;
  o.seed = 42;
  const Table a = std::move(GenerateSynthetic(o)).value();
  const Table b = std::move(GenerateSynthetic(o)).value();
  for (int64_t r = 0; r < 100; ++r) {
    EXPECT_EQ(a.GetTuple(r), b.GetTuple(r));
  }
  o.seed = 43;
  const Table c = std::move(GenerateSynthetic(o)).value();
  bool any_diff = false;
  for (int64_t r = 0; r < 100 && !any_diff; ++r) {
    any_diff = a.GetTuple(r) != c.GetTuple(r);
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticTest, CorrelationSigns) {
  SyntheticOptions o;
  o.num_tuples = 4000;
  o.num_attributes = 2;
  o.domain_size = 1000;
  o.correlation = 0.9;
  o.distribution = Distribution::kCorrelated;
  const Table pos = std::move(GenerateSynthetic(o)).value();
  EXPECT_GT(Correlation(pos, 0, 1), 0.5);
  o.distribution = Distribution::kAntiCorrelated;
  const Table neg = std::move(GenerateSynthetic(o)).value();
  EXPECT_LT(Correlation(neg, 0, 1), -0.3);
}

TEST(SyntheticTest, SkylineSizeOrdering) {
  // Anti-correlated data has (far) more skyline tuples than correlated.
  SyntheticOptions o;
  o.num_tuples = 2000;
  o.num_attributes = 3;
  o.domain_size = 500;
  o.correlation = 0.9;
  o.distribution = Distribution::kCorrelated;
  const size_t s_corr =
      skyline::SkylineSFS(std::move(GenerateSynthetic(o)).value()).size();
  o.distribution = Distribution::kAntiCorrelated;
  const size_t s_anti =
      skyline::SkylineSFS(std::move(GenerateSynthetic(o)).value()).size();
  EXPECT_GT(s_anti, 2 * s_corr);
}

TEST(SyntheticTest, Validation) {
  SyntheticOptions o;
  o.num_attributes = 0;
  EXPECT_FALSE(GenerateSynthetic(o).ok());
  o = {};
  o.domain_size = 0;
  EXPECT_FALSE(GenerateSynthetic(o).ok());
  o = {};
  o.correlation = 1.5;
  EXPECT_FALSE(GenerateSynthetic(o).ok());
}

TEST(SmallDomainTest, CorrelationKnobControlsSkylineSize) {
  SmallDomainOptions o;
  o.num_tuples = 2000;
  o.num_attributes = 4;
  o.domain_size = 8;
  o.correlation = 0.95;
  const size_t s_high =
      skyline::DistinctSkylineValues(
          std::move(GenerateSmallDomain(o)).value())
          .size();
  o.correlation = 0.0;
  const size_t s_low =
      skyline::DistinctSkylineValues(
          std::move(GenerateSmallDomain(o)).value())
          .size();
  EXPECT_LT(s_high, s_low);
}

TEST(SmallDomainTest, TargetedSkylineSize) {
  SmallDomainOptions o;
  o.num_tuples = 2000;
  o.num_attributes = 4;
  o.domain_size = 8;
  o.domain_size = 16;
  auto t = GenerateWithSkylineSize(o, 25, 5);
  ASSERT_TRUE(t.ok());
  const int64_t s = static_cast<int64_t>(
      skyline::DistinctSkylineValues(*t).size());
  EXPECT_NEAR(static_cast<double>(s), 25.0, 10.0);
}

TEST(WorstCaseTest, GuardsForceFullySpecifiedQueries) {
  WorstCaseOptions o;
  o.num_attributes = 3;
  o.num_skyline = 6;
  const Table t = std::move(GenerateSqLowerBound(o)).value();
  ASSERT_EQ(t.num_rows(), 3 + 6);
  // Guard i: 0 everywhere except h+1 = 7 at position i (equation 1).
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(t.value(i, j), i == j ? 7 : 0);
    }
  }
  // Payload rows live strictly inside [1, h] and form an anti-chain;
  // together with the guards, ALL rows are on the skyline.
  for (int64_t r = 3; r < t.num_rows(); ++r) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_GE(t.value(r, j), 1);
      EXPECT_LE(t.value(r, j), 6);
    }
  }
  EXPECT_EQ(skyline::SkylineSFS(t).size(), 9u);
}

TEST(WorstCaseTest, AnyUnderSpecifiedQueryMatchesAGuard) {
  WorstCaseOptions o;
  o.num_attributes = 4;
  o.num_skyline = 5;
  const Table t = std::move(GenerateSqLowerBound(o)).value();
  // A query constraining only attributes {0, 2} (upper bounds) matches
  // guard 1 and guard 3 (value 0 on all constrained attributes).
  for (int free = 0; free < 4; ++free) {
    bool guard_matches = false;
    for (int g = 0; g < 4; ++g) {
      bool ok = true;
      for (int j = 0; j < 4; ++j) {
        if (j == free) continue;  // unconstrained
        if (t.value(g, j) != 0) ok = false;  // any bound >= 1 matches 0
      }
      if (ok) guard_matches = true;
    }
    EXPECT_TRUE(guard_matches) << "free attr " << free;
  }
}

TEST(WorstCaseTest, RejectsDegenerate) {
  WorstCaseOptions o;
  o.num_attributes = 1;
  EXPECT_FALSE(GenerateSqLowerBound(o).ok());
  o = {};
  o.num_skyline = 0;
  EXPECT_FALSE(GenerateSqLowerBound(o).ok());
}

TEST(FlightsTest, SchemaMatchesPaperDescription) {
  FlightsOptions o;
  o.num_tuples = 2000;
  const Table t = std::move(GenerateFlightsOnTime(o)).value();
  const data::Schema& s = t.schema();
  // 9 base ranking + 4 derived groups + 2 filtering.
  EXPECT_EQ(s.num_attributes(), 15);
  EXPECT_EQ(s.num_ranking_attributes(), 13);
  EXPECT_EQ(s.attribute(FlightsAttrs::kDelayGroup).iface,
            data::InterfaceType::kPQ);
  EXPECT_EQ(s.attribute(FlightsAttrs::kDistanceGroup).iface,
            data::InterfaceType::kPQ);
  EXPECT_EQ(s.attribute(FlightsAttrs::kDepDelay).iface,
            data::InterfaceType::kRQ);
  EXPECT_EQ(*s.IndexOf("Carrier"), 13);
  // PQ domains are small (the paper's premise for PQ efficiency).
  EXPECT_EQ(s.attribute(FlightsAttrs::kDelayGroup).DomainSize(), 11);
}

TEST(FlightsTest, StructuralCorrelations) {
  FlightsOptions o;
  o.num_tuples = 5000;
  const Table t = std::move(GenerateFlightsOnTime(o)).value();
  // Elapsed time tracks air time.
  EXPECT_GT(
      Correlation(t, FlightsAttrs::kActualElapsed, FlightsAttrs::kAirTime),
      0.8);
  // Distance (inverted) is consistent with AirTime being anti-correlated
  // in normalized space: longer flights (small Distance code) have large
  // AirTime.
  EXPECT_LT(
      Correlation(t, FlightsAttrs::kDistance, FlightsAttrs::kAirTime),
      -0.8);
  // Groups track their base attribute.
  EXPECT_GT(
      Correlation(t, FlightsAttrs::kDepDelay, FlightsAttrs::kDelayGroup),
      0.7);
  // Arrival delay tracks departure delay.
  EXPECT_GT(
      Correlation(t, FlightsAttrs::kDepDelay, FlightsAttrs::kArrivalDelay),
      0.9);
}

TEST(FlightsTest, OptionsTrimSchema) {
  FlightsOptions o;
  o.num_tuples = 10;
  o.include_derived_groups = false;
  o.include_filtering = false;
  const Table t = std::move(GenerateFlightsOnTime(o)).value();
  EXPECT_EQ(t.schema().num_attributes(), 9);
  EXPECT_EQ(t.schema().num_ranking_attributes(), 9);
}

TEST(BlueNileTest, SchemaAndHedonicStructure) {
  BlueNileOptions o;
  o.num_tuples = 5000;
  const Table t = std::move(GenerateBlueNile(o)).value();
  EXPECT_EQ(t.num_rows(), 5000);
  const data::Schema& s = t.schema();
  EXPECT_EQ(s.num_ranking_attributes(), 5);
  for (int attr : s.ranking_attributes()) {
    EXPECT_EQ(s.attribute(attr).iface, data::InterfaceType::kRQ);
  }
  // Bigger diamonds (smaller inverted carat code) cost more: positive
  // correlation between carat code and... price falls as code rises.
  EXPECT_LT(Correlation(t, BlueNileAttrs::kPrice, BlueNileAttrs::kCarat),
            -0.3);
  // A non-trivial skyline exists (the BN experiment's premise).
  common::Rng rng(1);
  const Table sample = std::move(t.Sample(3000, &rng)).value();
  EXPECT_GT(skyline::SkylineSFS(sample).size(), 20u);
}

TEST(GoogleFlightsTest, RouteInventoryShape) {
  GoogleFlightsOptions o;
  o.num_flights = 300;
  const Table t = std::move(GenerateRoute(o)).value();
  const data::Schema& s = t.schema();
  EXPECT_EQ(s.attribute(GoogleFlightsAttrs::kStops).iface,
            data::InterfaceType::kSQ);
  EXPECT_EQ(s.attribute(GoogleFlightsAttrs::kPrice).iface,
            data::InterfaceType::kSQ);
  EXPECT_EQ(s.attribute(GoogleFlightsAttrs::kConnection).iface,
            data::InterfaceType::kSQ);
  EXPECT_EQ(s.attribute(GoogleFlightsAttrs::kDepartureTime).iface,
            data::InterfaceType::kRQ);
  // Nonstops have zero connection time.
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    if (t.value(r, GoogleFlightsAttrs::kStops) == 0) {
      EXPECT_EQ(t.value(r, GoogleFlightsAttrs::kConnection), 0);
    }
  }
  // Skyline flights per route in the paper's 4-11 ballpark (loosely).
  const size_t sky = skyline::SkylineSFS(t).size();
  EXPECT_GE(sky, 2u);
  EXPECT_LE(sky, 40u);
}

TEST(YahooAutosTest, DepreciationStructure) {
  YahooAutosOptions o;
  o.num_tuples = 5000;
  const Table t = std::move(GenerateYahooAutos(o)).value();
  // Older cars (larger age code) have more miles and lower prices.
  EXPECT_GT(Correlation(t, YahooAutosAttrs::kYear,
                        YahooAutosAttrs::kMileage),
            0.5);
  EXPECT_LT(
      Correlation(t, YahooAutosAttrs::kYear, YahooAutosAttrs::kPrice),
      -0.2);
}

TEST(CsvTest, RoundTripPreservesEverything) {
  FlightsOptions o;
  o.num_tuples = 200;
  const Table t = std::move(GenerateFlightsOnTime(o)).value();
  const std::string path = ::testing::TempDir() + "/hdsky_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), t.num_rows());
  ASSERT_EQ(back->schema().num_attributes(), t.schema().num_attributes());
  for (int a = 0; a < t.schema().num_attributes(); ++a) {
    EXPECT_EQ(back->schema().attribute(a).name,
              t.schema().attribute(a).name);
    EXPECT_EQ(back->schema().attribute(a).iface,
              t.schema().attribute(a).iface);
    EXPECT_EQ(back->schema().attribute(a).kind,
              t.schema().attribute(a).kind);
    EXPECT_EQ(back->schema().attribute(a).domain_min,
              t.schema().attribute(a).domain_min);
    EXPECT_EQ(back->schema().attribute(a).domain_max,
              t.schema().attribute(a).domain_max);
  }
  for (int64_t r = 0; r < t.num_rows(); ++r) {
    EXPECT_EQ(back->GetTuple(r), t.GetTuple(r));
  }
  std::remove(path.c_str());
}

TEST(CsvTest, NullRoundTrip) {
  auto schema = data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        10}});
  Table t(std::move(schema).value());
  ASSERT_TRUE(t.Append({data::kNullValue}).ok());
  ASSERT_TRUE(t.Append({5}).ok());
  const std::string path = ::testing::TempDir() + "/hdsky_null.csv";
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto back = ReadCsv(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->value(0, 0), data::kNullValue);
  EXPECT_EQ(back->value(1, 0), 5);
  std::remove(path.c_str());
}

TEST(CsvTest, Errors) {
  EXPECT_TRUE(ReadCsv("/nonexistent/nope.csv").status().IsIOError());
  const std::string path = ::testing::TempDir() + "/hdsky_bad.csv";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a:R:RQ:0:10\n1,2\n", f);  // wrong arity row
    fclose(f);
  }
  EXPECT_TRUE(ReadCsv(path).status().IsIOError());
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("a:R:XX:0:10\n", f);  // bad interface code
    fclose(f);
  }
  EXPECT_TRUE(ReadCsv(path).status().IsIOError());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dataset
}  // namespace hdsky
