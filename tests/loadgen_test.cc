// End-to-end tests for the event-driven server and the epoll load
// driver: request pipelining on one connection, BUSY shedding and the
// retry barrier, slow-reader shedding, idle-timeout eviction, budget
// accounting against a warm shared cache, and cross-session
// single-flight dedup measured through RunLoad (the TSan CI job's
// LoadGen stress).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "interface/hidden_database.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "net/socket.h"
#include "net/wire.h"
#include "service/event_server.h"
#include "service/load_driver.h"
#include "service/remote_database.h"

namespace hdsky {
namespace service {
namespace {

using interface::Query;
using interface::QueryResult;
using interface::TopKInterface;
using interface::TopKOptions;

data::Table MakeTable(data::InterfaceType iface, int64_t n = 400) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = n;
  gen.num_attributes = 3;
  gen.domain_size = 30;
  gen.iface = iface;
  gen.seed = 1234;
  return std::move(dataset::GenerateSynthetic(gen)).value();
}

std::unique_ptr<TopKInterface> MakeBackend(const data::Table* t) {
  TopKOptions opts;
  opts.k = 5;
  return std::move(
             TopKInterface::Create(t, interface::MakeSumRanking(), opts))
      .value();
}

RemoteHiddenDatabase::Options FastClient(uint64_t session) {
  RemoteHiddenDatabase::Options o;
  o.connect_timeout_ms = 2000;
  o.io_timeout_ms = 5000;
  o.max_attempts = 6;
  o.initial_backoff_ms = 1;
  o.max_backoff_ms = 8;
  o.session_id = session;
  o.jitter_seed = 7;
  return o;
}

/// Connects a raw protocol client: handshake done, ready for kQuery.
net::Socket ConnectAndHello(uint16_t port, uint64_t session) {
  auto sock =
      std::move(net::Socket::Connect("127.0.0.1", port, 2000)).value();
  EXPECT_TRUE(sock.SetIoTimeout(5000).ok());
  std::string hello;
  net::EncodeHello(session, &hello);
  EXPECT_TRUE(net::WriteFrame(sock, net::FrameType::kHello, hello).ok());
  net::Frame frame;
  EXPECT_TRUE(net::ReadFrame(sock, &frame).ok());
  EXPECT_EQ(frame.type, net::FrameType::kDescriptor);
  return sock;
}

void SendQuery(net::Socket& sock, uint64_t seq, const Query& q) {
  std::string payload;
  net::EncodeQuery(seq, q, &payload);
  EXPECT_TRUE(net::WriteFrame(sock, net::FrameType::kQuery, payload).ok());
}

/// One buffer holding `queries` as consecutive kQuery frames with seqs
/// first_seq, first_seq + 1, ... — what a pipelining client puts on the
/// wire in a single write.
std::string PipelineBuffer(const std::vector<Query>& queries,
                           uint64_t first_seq) {
  std::string buf;
  std::string payload;
  for (size_t i = 0; i < queries.size(); ++i) {
    payload.clear();
    net::EncodeQuery(first_seq + i, queries[i], &payload);
    buf += net::EncodeFrameHeader(net::FrameType::kQuery,
                                  static_cast<uint32_t>(payload.size()));
    buf += payload;
  }
  return buf;
}

/// A backend that sleeps before delegating, to hold executor slots open
/// long enough for admission control to fire deterministically.
std::unique_ptr<interface::HiddenDatabase> MakeSlowBackend(
    TopKInterface* inner, int delay_ms) {
  return std::make_unique<interface::CallbackDatabase>(
      inner->schema(), inner->k(),
      [inner, delay_ms](const Query& q) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        return inner->Execute(q);
      });
}

// --- workload generator --------------------------------------------------

TEST(WorkloadTest, DeterministicForASeedDistinctAcrossSeeds) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  const auto a = GenerateWorkload(t.schema(), 32, 42);
  const auto b = GenerateWorkload(t.schema(), 32, 42);
  ASSERT_EQ(a.size(), 32u);
  ASSERT_EQ(b.size(), 32u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].Signature(), b[i].Signature()) << i;
  }
  // Queries are pairwise distinct (each is a distinct backend key).
  std::set<std::string> sigs;
  for (const auto& q : a) sigs.insert(q.Signature());
  EXPECT_EQ(sigs.size(), a.size());

  const auto c = GenerateWorkload(t.schema(), 32, 43);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    differing += a[i].Signature() != c[i].Signature();
  }
  EXPECT_GT(differing, 0);
}

TEST(WorkloadTest, RespectsEveryInterfaceTaxonomy) {
  for (const auto iface :
       {data::InterfaceType::kSQ, data::InterfaceType::kRQ,
        data::InterfaceType::kPQ}) {
    const data::Table t = MakeTable(iface);
    for (const auto& q : GenerateWorkload(t.schema(), 64, 7)) {
      EXPECT_TRUE(interface::ValidateAgainstSchema(t.schema(), q).ok())
          << q.ToString(t.schema());
    }
  }
}

// --- pipelining ----------------------------------------------------------

TEST(EventServerTest, AnswersPipelinedQueriesInOrder) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  auto backend = MakeBackend(&t);
  auto server =
      std::move(EventDrivenServer::Start(backend.get(), {})).value();

  auto sock = ConnectAndHello(server->port(), 1);
  const auto queries = GenerateWorkload(t.schema(), 8, 42);
  const std::string buf = PipelineBuffer(queries, 1);
  ASSERT_TRUE(sock.SendAll(buf.data(), buf.size()).ok());

  // All 8 arrive as kResult, strictly in sequence order: the per-session
  // contract survives pipelining.
  for (uint64_t want = 1; want <= 8; ++want) {
    net::Frame frame;
    ASSERT_TRUE(net::ReadFrame(sock, &frame).ok()) << want;
    ASSERT_EQ(frame.type, net::FrameType::kResult) << want;
    uint64_t seq = 0;
    QueryResult result;
    ASSERT_TRUE(net::DecodeResult(frame.payload,
                                  t.schema().num_attributes(), &seq,
                                  &result)
                    .ok());
    EXPECT_EQ(seq, want);
  }
  server->Stop();
  EXPECT_EQ(server->stats().queries_served, 8);
  EXPECT_EQ(server->stats().protocol_errors, 0);
}

TEST(EventServerTest, OverDeepPipelineGetsBusyAndRetrySucceeds) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  auto backend = MakeBackend(&t);
  auto slow = MakeSlowBackend(backend.get(), 50);
  EventDrivenServer::Options opts;
  opts.max_pipeline_depth = 2;
  opts.serialize_backend = true;  // CallbackDatabase is a shared closure
  auto server =
      std::move(EventDrivenServer::Start(slow.get(), opts)).value();

  auto sock = ConnectAndHello(server->port(), 1);
  const auto queries = GenerateWorkload(t.schema(), 5, 42);
  const std::string buf = PipelineBuffer(queries, 1);
  ASSERT_TRUE(sock.SendAll(buf.data(), buf.size()).ok());

  // Seq 1 occupies the backend (50 ms), 2-3 fill the pipeline buffer,
  // 4-5 overflow: they must come back BUSY, the rest as results.
  std::set<uint64_t> results;
  std::set<uint64_t> busy;
  for (int i = 0; i < 5; ++i) {
    net::Frame frame;
    ASSERT_TRUE(net::ReadFrame(sock, &frame).ok()) << i;
    uint64_t seq = 0;
    if (frame.type == net::FrameType::kResult) {
      QueryResult result;
      ASSERT_TRUE(net::DecodeResult(frame.payload,
                                    t.schema().num_attributes(), &seq,
                                    &result)
                      .ok());
      results.insert(seq);
    } else {
      ASSERT_EQ(frame.type, net::FrameType::kStatus);
      uint16_t code = 0;
      std::string message;
      ASSERT_TRUE(
          net::DecodeStatusFrame(frame.payload, &seq, &code, &message)
              .ok());
      EXPECT_EQ(code, static_cast<uint16_t>(net::WireStatus::kRateLimited))
          << message;
      busy.insert(seq);
    }
  }
  EXPECT_EQ(results, (std::set<uint64_t>{1, 2, 3}));
  EXPECT_EQ(busy, (std::set<uint64_t>{4, 5}));

  // The BUSY barrier: retrying from the lowest rejected seq clears it and
  // both queries now succeed.
  for (uint64_t seq = 4; seq <= 5; ++seq) {
    SendQuery(sock, seq, queries[seq - 1]);
    net::Frame frame;
    ASSERT_TRUE(net::ReadFrame(sock, &frame).ok()) << seq;
    ASSERT_EQ(frame.type, net::FrameType::kResult) << seq;
  }
  server->Stop();
  EXPECT_EQ(server->stats().queries_served, 5);
  EXPECT_GE(server->stats().busy_rejections, 2);
}

// --- overload and misbehaving clients ------------------------------------

TEST(EventServerTest, BackendSaturationShedsBusyNotQueues) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  auto backend = MakeBackend(&t);
  // The occupying query parks inside the backend until the test releases
  // it, so the single admission slot is provably held when the second
  // session's query arrives — no sleep-based timing to flake when the
  // suite runs alongside a parallel ctest load.
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  interface::CallbackDatabase gated(
      backend->schema(), backend->k(), [&](const Query& query) {
        started.fetch_add(1);
        while (!release.load()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        return backend->Execute(query);
      });
  EventDrivenServer::Options opts;
  opts.shared_cache = false;  // distinct sessions, same query: no dedup
  opts.max_pending_queries = 1;
  opts.num_workers = 2;
  opts.serialize_backend = true;
  auto server = std::move(EventDrivenServer::Start(&gated, opts)).value();

  Query q(t.schema().num_attributes());
  q.AddAtMost(0, 10);

  auto first = ConnectAndHello(server->port(), 1);
  auto second = ConnectAndHello(server->port(), 2);
  SendQuery(first, 1, q);
  for (int i = 0; i < 5000 && started.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(started.load(), 1);  // first query pinned in the backend

  SendQuery(second, 1, q);
  net::Frame frame;
  ASSERT_TRUE(net::ReadFrame(second, &frame).ok());
  ASSERT_EQ(frame.type, net::FrameType::kStatus);
  uint64_t seq = 0;
  uint16_t code = 0;
  std::string message;
  ASSERT_TRUE(
      net::DecodeStatusFrame(frame.payload, &seq, &code, &message).ok());
  EXPECT_EQ(code, static_cast<uint16_t>(net::WireStatus::kRateLimited));
  EXPECT_EQ(seq, 1u);

  // The occupying query finishes normally...
  release.store(true);
  ASSERT_TRUE(net::ReadFrame(first, &frame).ok());
  EXPECT_EQ(frame.type, net::FrameType::kResult);
  // ...and the shed client's retry of the SAME seq is then admitted.
  // The admission slot frees when the worker task returns, which can
  // lag the result frame by a beat, so a retry may still draw BUSY —
  // retry until admitted, as a real client would.
  for (int attempt = 0;; ++attempt) {
    SendQuery(second, 1, q);
    ASSERT_TRUE(net::ReadFrame(second, &frame).ok());
    if (frame.type == net::FrameType::kResult) break;
    ASSERT_EQ(frame.type, net::FrameType::kStatus);
    ASSERT_TRUE(
        net::DecodeStatusFrame(frame.payload, &seq, &code, &message).ok());
    ASSERT_EQ(code, static_cast<uint16_t>(net::WireStatus::kRateLimited));
    ASSERT_LT(attempt, 500);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  server->Stop();
  EXPECT_GE(server->stats().busy_rejections, 1);
  EXPECT_EQ(server->stats().queries_served, 2);
}

TEST(EventServerTest, SlowReaderIsShedNotBufferedWithoutBound) {
  // Wide results (k = 50) so the reply volume — roughly 10 MB across
  // 8000 queries — dwarfs what the kernel's socket buffers can absorb
  // (tcp_wmem caps out at a few MB): the server's own write backlog is
  // guaranteed to grow past write_buffer_limit.
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 2000);
  TopKOptions topk;
  topk.k = 50;
  auto backend = std::move(TopKInterface::Create(
                               &t, interface::MakeSumRanking(), topk))
                     .value();
  EventDrivenServer::Options opts;
  opts.max_pipeline_depth = 16384;
  opts.max_pending_queries = 0;
  opts.write_buffer_limit = 256u << 10;
  opts.read_pause_bytes = 64u << 10;
  auto server =
      std::move(EventDrivenServer::Start(backend.get(), opts)).value();

  auto sock = ConnectAndHello(server->port(), 1);
  // Thousands of distinct queries whose replies we never read: the reply
  // backlog must cross write_buffer_limit and the server must shed us
  // instead of buffering an unbounded pile.
  const auto queries = GenerateWorkload(t.schema(), 8000, 42);
  const std::string buf = PipelineBuffer(queries, 1);
  sock.SendAll(buf.data(), buf.size());  // may fail once we are shed

  bool shed = false;
  for (int i = 0; i < 1500 && !shed; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    shed = server->stats().connections_shed >= 1;
  }
  EXPECT_TRUE(shed);
  server->Stop();
}

TEST(EventServerTest, IdleConnectionIsEvicted) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ, 100);
  auto backend = MakeBackend(&t);
  EventDrivenServer::Options opts;
  opts.idle_timeout_ms = 100;
  auto server =
      std::move(EventDrivenServer::Start(backend.get(), opts)).value();

  auto sock = ConnectAndHello(server->port(), 1);
  // Say nothing: within a few ticks the server must close us.
  char byte = 0;
  const auto status = sock.RecvExact(&byte, 1);
  EXPECT_FALSE(status.ok()) << "expected eviction, got a byte";
  server->Stop();
  EXPECT_GE(server->stats().idle_closed, 1);
  EXPECT_GE(server->stats().connections_shed, 1);
}

// --- shared cache: budgets and dedup -------------------------------------

TEST(EventServerTest, BudgetChargesWarmCacheAnswersLikeBackendAnswers) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  auto backend = MakeBackend(&t);
  EventDrivenServer::Options opts;
  opts.per_client_query_budget = 10;
  auto server =
      std::move(EventDrivenServer::Start(backend.get(), opts)).value();

  auto run_session = [&](uint64_t session_id) {
    auto remote =
        std::move(RemoteHiddenDatabase::Connect(
                      "127.0.0.1", server->port(), FastClient(session_id)))
            .value();
    EXPECT_EQ(remote->server_remaining_budget(), 10);
    for (int i = 0; i < 10; ++i) {
      Query q(t.schema().num_attributes());
      q.AddAtMost(0, 5 + i);
      ASSERT_TRUE(remote->Execute(q).ok()) << "session " << session_id
                                           << " query " << i;
    }
    Query over(t.schema().num_attributes());
    over.AddAtMost(0, 25);
    auto refused = remote->Execute(over);
    ASSERT_FALSE(refused.ok());
    EXPECT_TRUE(refused.status().IsResourceExhausted());
  };

  run_session(1);  // cold: every answer reaches the backend
  run_session(2);  // warm: every answer comes from the shared cache

  server->Stop();
  const EventDrivenServer::Stats stats = server->stats();
  // Session 2 was served entirely from cache — yet charged identically:
  // both sessions exhausted the same 10-query budget.
  EXPECT_EQ(backend->stats().queries_issued, 10);
  EXPECT_EQ(stats.backend_executions, 10);
  EXPECT_EQ(stats.queries_served, 20);
  EXPECT_GE(stats.cache_hits + stats.singleflight_joins, 10);
  EXPECT_EQ(stats.budget_rejections, 2);
}

TEST(LoadGenTest, SingleFlightDedupAcrossConcurrentSessions) {
  const data::Table t = MakeTable(data::InterfaceType::kRQ);
  auto backend = MakeBackend(&t);
  auto server =
      std::move(EventDrivenServer::Start(backend.get(), {})).value();

  LoadOptions load;
  load.port = server->port();
  load.sessions = 8;
  load.queries_per_session = 16;
  load.pipeline_depth = 4;
  load.num_loops = 2;
  load.total_timeout_ms = 60000;
  const auto report = std::move(RunLoad(load)).value();

  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.sessions_completed, 8);
  EXPECT_EQ(report.sessions_failed, 0);
  EXPECT_EQ(report.queries_completed, 8 * 16);
  ASSERT_TRUE(report.server_stats_valid);
  // 8 sessions ran the same 16 queries; single flight means the backend
  // paid each distinct query exactly once.
  EXPECT_EQ(report.server.queries_served, 8 * 16);
  EXPECT_EQ(report.server.backend_executions, 16);
  EXPECT_EQ(backend->stats().queries_issued, 16);
  EXPECT_NEAR(report.dedup_ratio, 1.0 - 1.0 / 8, 1e-9);
  EXPECT_GT(report.latency_p99_us, 0);
  server->Stop();
}

TEST(LoadGenTest, RunLoadRejectsInvalidOptions) {
  LoadOptions load;
  load.port = 0;  // nowhere to connect
  EXPECT_FALSE(RunLoad(load).ok());
  load.port = 1;
  load.sessions = 0;
  EXPECT_FALSE(RunLoad(load).ok());
  load.sessions = 4;
  load.pipeline_depth = 0;
  EXPECT_FALSE(RunLoad(load).ok());
}

}  // namespace
}  // namespace service
}  // namespace hdsky
