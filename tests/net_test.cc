// Wire-protocol tests: primitive codec round trips, frame header
// validation, payload codecs against malformed/truncated/hostile input,
// and a raw socket loopback frame exchange. The decoder hardening tested
// here is what the fault-injection suite (service_test.cc) relies on.

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/schema.h"
#include "interface/query.h"
#include "net/socket.h"
#include "net/wire.h"

namespace hdsky {
namespace net {
namespace {

using data::AttributeKind;
using data::InterfaceType;
using data::Schema;
using interface::Query;
using interface::QueryResult;

Schema TestSchema() {
  return std::move(Schema::Create(
                       {{"price", AttributeKind::kRanking,
                         InterfaceType::kRQ, 0, 1000},
                        {"stops", AttributeKind::kRanking,
                         InterfaceType::kPQ, 0, 5},
                        {"carrier", AttributeKind::kFiltering,
                         InterfaceType::kFilterEquality, 0, 3}}))
      .value();
}

TEST(EncoderDecoderTest, PrimitivesRoundTrip) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU8(0xab);
  enc.PutU16(0xbeef);
  enc.PutU32(0xdeadbeef);
  enc.PutU64(0x0123456789abcdefULL);
  enc.PutI64(-42);
  enc.PutString("hdsky");

  Decoder dec(buf);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string s;
  EXPECT_TRUE(dec.GetU8(&u8));
  EXPECT_TRUE(dec.GetU16(&u16));
  EXPECT_TRUE(dec.GetU32(&u32));
  EXPECT_TRUE(dec.GetU64(&u64));
  EXPECT_TRUE(dec.GetI64(&i64));
  EXPECT_TRUE(dec.GetString(&s));
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0xbeef);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(s, "hdsky");
  EXPECT_TRUE(dec.exhausted());
}

TEST(EncoderDecoderTest, ReadsPastEndFailSticky) {
  std::string buf;
  Encoder(&buf).PutU16(7);
  Decoder dec(buf);
  uint32_t v = 0;
  EXPECT_FALSE(dec.GetU32(&v));  // only 2 bytes available
  EXPECT_FALSE(dec.ok());
  uint8_t b = 0;
  EXPECT_FALSE(dec.GetU8(&b));  // sticky failure
}

TEST(EncoderDecoderTest, LyingStringLengthCannotAllocate) {
  std::string buf;
  Encoder enc(&buf);
  enc.PutU32(0x7fffffff);  // claims a 2 GiB string...
  enc.PutU8('x');          // ...but only 1 byte follows
  Decoder dec(buf);
  std::string s;
  EXPECT_FALSE(dec.GetString(&s));
  EXPECT_TRUE(s.empty());
}

TEST(FrameHeaderTest, RoundTripsAndValidates) {
  const std::string h = EncodeFrameHeader(FrameType::kQuery, 1234);
  ASSERT_EQ(h.size(), kFrameHeaderBytes);
  auto decoded = DecodeFrameHeader(h);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, FrameType::kQuery);
  EXPECT_EQ(decoded->payload_len, 1234u);
  EXPECT_EQ(decoded->version, kProtocolVersion);
}

TEST(FrameHeaderTest, RejectsCorruption) {
  const std::string good = EncodeFrameHeader(FrameType::kResult, 64);
  {
    std::string bad = good;
    bad[0] = 'X';  // wrong magic
    EXPECT_TRUE(DecodeFrameHeader(bad).status().IsIOError());
  }
  {
    std::string bad = good;
    bad[2] = static_cast<char>(kProtocolVersion + 1);  // future version
    EXPECT_TRUE(DecodeFrameHeader(bad).status().IsIOError());
  }
  {
    std::string bad = good;
    bad[3] = 99;  // unknown frame type
    EXPECT_TRUE(DecodeFrameHeader(bad).status().IsIOError());
  }
  {
    // Payload length over the cap must be rejected before any allocation.
    std::string bad = EncodeFrameHeader(FrameType::kResult, 0);
    const uint32_t huge = kMaxPayloadBytes + 1;
    std::memcpy(&bad[4], &huge, sizeof(huge));
    EXPECT_TRUE(DecodeFrameHeader(bad).status().IsIOError());
  }
  EXPECT_TRUE(
      DecodeFrameHeader(good.substr(0, 5)).status().IsIOError());
}

TEST(PayloadCodecTest, HelloRoundTrip) {
  std::string payload;
  EncodeHello(0xfeedface12345678ULL, &payload);
  uint64_t id = 0;
  ASSERT_TRUE(DecodeHello(payload, &id).ok());
  EXPECT_EQ(id, 0xfeedface12345678ULL);
  EXPECT_TRUE(DecodeHello(payload.substr(0, 3), &id).IsIOError());
  EXPECT_TRUE(DecodeHello(payload + "x", &id).IsIOError());
}

TEST(PayloadCodecTest, DescriptorRoundTrip) {
  const Schema schema = TestSchema();
  std::string payload;
  EncodeDescriptor(schema, 25, 500, &payload);
  auto decoded = DecodeDescriptor(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->k, 25);
  EXPECT_EQ(decoded->remaining_budget, 500);
  EXPECT_EQ(decoded->schema.num_attributes(), schema.num_attributes());
  EXPECT_EQ(decoded->schema.ToString(), schema.ToString());

  // Every strict prefix must fail cleanly.
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_TRUE(
        DecodeDescriptor(payload.substr(0, cut)).status().IsIOError())
        << "prefix " << cut;
  }
  EXPECT_TRUE(DecodeDescriptor(payload + "z").status().IsIOError());
}

TEST(PayloadCodecTest, QueryRoundTripIncludesEmptyAndUnbounded) {
  const Schema schema = TestSchema();
  std::vector<Query> cases;
  {
    Query q(3);  // fully unconstrained
    cases.push_back(q);
  }
  {
    Query q(3);
    q.AddAtMost(0, 400).AddAtLeast(1, 2).AddEquals(2, 1);
    cases.push_back(q);
  }
  {
    Query q(3);
    q.AddAtLeast(0, 10).AddAtMost(0, 5);  // empty interval
    cases.push_back(q);
  }
  for (size_t c = 0; c < cases.size(); ++c) {
    std::string payload;
    EncodeQuery(1000 + c, cases[c], &payload);
    uint64_t seq = 0;
    Query decoded;
    ASSERT_TRUE(DecodeQuery(payload, &seq, &decoded).ok()) << c;
    EXPECT_EQ(seq, 1000 + c);
    ASSERT_EQ(decoded.num_attributes(), cases[c].num_attributes());
    for (int a = 0; a < 3; ++a) {
      EXPECT_EQ(decoded.interval(a).lower, cases[c].interval(a).lower)
          << "case " << c << " attr " << a;
      EXPECT_EQ(decoded.interval(a).upper, cases[c].interval(a).upper)
          << "case " << c << " attr " << a;
    }
  }
}

TEST(PayloadCodecTest, QueryRejectsMalformation) {
  Query q(3);
  q.AddAtMost(0, 7);
  std::string payload;
  EncodeQuery(5, q, &payload);
  uint64_t seq = 0;
  Query out;
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_TRUE(DecodeQuery(payload.substr(0, cut), &seq, &out).IsIOError())
        << "prefix " << cut;
  }
  EXPECT_TRUE(DecodeQuery(payload + "!", &seq, &out).IsIOError());
}

TEST(PayloadCodecTest, ResultRoundTrip) {
  QueryResult result;
  result.overflow = true;
  result.ids = {3, 9, 27};
  result.tuples = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  std::string payload;
  EncodeResult(77, result, &payload);

  uint64_t seq = 0;
  QueryResult decoded;
  ASSERT_TRUE(DecodeResult(payload, 3, &seq, &decoded).ok());
  EXPECT_EQ(seq, 77u);
  EXPECT_EQ(decoded.overflow, true);
  EXPECT_EQ(decoded.ids, result.ids);
  EXPECT_EQ(decoded.tuples, result.tuples);

  // Width disagreement, truncation, trailing garbage, bad overflow flag.
  EXPECT_TRUE(DecodeResult(payload, 4, &seq, &decoded).IsIOError());
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_TRUE(
        DecodeResult(payload.substr(0, cut), 3, &seq, &decoded).IsIOError())
        << "prefix " << cut;
  }
  EXPECT_TRUE(DecodeResult(payload + "x", 3, &seq, &decoded).IsIOError());
  {
    std::string bad = payload;
    bad[8] = 2;  // overflow flag is the byte after the u64 seq
    EXPECT_TRUE(DecodeResult(bad, 3, &seq, &decoded).IsIOError());
  }
}

TEST(PayloadCodecTest, StatusRoundTripAndTransience) {
  std::string payload;
  EncodeStatus(11, WireStatus::kRateLimited, "slow down", &payload);
  uint64_t seq = 0;
  uint16_t code = 0;
  std::string message;
  ASSERT_TRUE(DecodeStatusFrame(payload, &seq, &code, &message).ok());
  EXPECT_EQ(seq, 11u);
  EXPECT_EQ(code, static_cast<uint16_t>(WireStatus::kRateLimited));
  EXPECT_EQ(message, "slow down");

  EXPECT_TRUE(IsTransient(WireStatus::kRateLimited));
  // A server-reported IOError is a statement about the backend, not the
  // transport; only transport faults and explicit throttles retry.
  EXPECT_FALSE(IsTransient(WireStatus::kIOError));
  EXPECT_FALSE(IsTransient(WireStatus::kBudgetExhausted));
  EXPECT_FALSE(IsTransient(WireStatus::kInvalidArgument));

  // Both budget exhaustion and rate limiting surface as the anytime
  // signal the algorithms already understand.
  EXPECT_TRUE(StatusFromWire(static_cast<uint16_t>(
                                 WireStatus::kBudgetExhausted),
                             "spent")
                  .IsResourceExhausted());
  EXPECT_TRUE(StatusFromWire(
                  static_cast<uint16_t>(WireStatus::kRateLimited), "429")
                  .IsResourceExhausted());
  EXPECT_TRUE(StatusFromWire(static_cast<uint16_t>(
                                 WireStatus::kInvalidArgument),
                             "bad")
                  .IsInvalidArgument());
}

TEST(SocketTest, LoopbackFrameRoundTrip) {
  auto listener = ServerSocket::Listen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok());
  const uint16_t port = listener->port();
  ASSERT_GT(port, 0);

  std::jthread server([&] {
    auto ready = listener->PollAccept(5000);
    ASSERT_TRUE(ready.ok() && *ready);
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    Frame frame;
    ASSERT_TRUE(ReadFrame(*conn, &frame).ok());
    EXPECT_EQ(frame.type, FrameType::kHello);
    // Echo the payload back as a status frame.
    ASSERT_TRUE(
        WriteFrame(*conn, FrameType::kStatus, frame.payload).ok());
  });

  auto client = Socket::Connect("127.0.0.1", port, 5000);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SetIoTimeout(5000).ok());
  std::string payload;
  EncodeHello(42, &payload);
  ASSERT_TRUE(WriteFrame(*client, FrameType::kHello, payload).ok());
  Frame reply;
  ASSERT_TRUE(ReadFrame(*client, &reply).ok());
  EXPECT_EQ(reply.type, FrameType::kStatus);
  EXPECT_EQ(reply.payload, payload);
}

TEST(SocketTest, ReadFrameRejectsGarbageHeader) {
  auto listener = ServerSocket::Listen("127.0.0.1", 0, 4);
  ASSERT_TRUE(listener.ok());
  std::jthread server([&] {
    auto ready = listener->PollAccept(5000);
    ASSERT_TRUE(ready.ok() && *ready);
    auto conn = listener->Accept();
    ASSERT_TRUE(conn.ok());
    const char garbage[] = "XXXXXXXXXXXXXXXX";
    (void)conn->SendAll(garbage, sizeof(garbage));
  });
  auto client = Socket::Connect("127.0.0.1", listener->port(), 5000);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client->SetIoTimeout(5000).ok());
  Frame frame;
  EXPECT_TRUE(ReadFrame(*client, &frame).IsIOError());
}

TEST(SocketTest, ConnectToClosedPortFails) {
  // Grab an ephemeral port, then close the listener so nothing serves it.
  uint16_t dead_port = 0;
  {
    auto listener = ServerSocket::Listen("127.0.0.1", 0, 1);
    ASSERT_TRUE(listener.ok());
    dead_port = listener->port();
  }
  auto client = Socket::Connect("127.0.0.1", dead_port, 1000);
  EXPECT_FALSE(client.ok());
  EXPECT_TRUE(client.status().IsIOError());
}

TEST(ParseHostPortTest, AcceptsAndRejects) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("127.0.0.1:7447", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7447);
  ASSERT_TRUE(ParseHostPort("example.com:1", &host, &port).ok());
  EXPECT_EQ(host, "example.com");
  EXPECT_EQ(port, 1);
  for (const char* bad :
       {"no-colon", ":7447", "host:", "host:0", "host:65536", "host:abc",
        "host:-1", "host:12x", ""}) {
    EXPECT_FALSE(ParseHostPort(bad, &host, &port).ok()) << bad;
  }
}

}  // namespace
}  // namespace net
}  // namespace hdsky
