// Property tests of skyline::DominanceIndex against the linear-scan
// reference it replaced, and of SkylineCollector (which embeds the
// index) against a collector that still scans linearly. Random streams
// cover 1 through 5 dimensions — exercising the running-minimum,
// staircase, and kd-tree specializations — with small domains (forcing
// equal and dominated inserts), NULL values, non-ranking tuple
// positions, repeated ids, and unconditional AddConfirmed of
// non-antichain point sets.

#include <random>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "core/discovery.h"
#include "skyline/dominance.h"
#include "skyline/dominance_index.h"

namespace {

using namespace hdsky;
using data::Tuple;
using data::TupleId;
using data::Value;
using skyline::DomRelation;
using skyline::DominanceIndex;

/// The pre-index semantics: scan every stored tuple.
class LinearReference {
 public:
  explicit LinearReference(std::vector<int> attrs)
      : attrs_(std::move(attrs)) {}

  void Insert(const Tuple& t) { pts_.push_back(t); }

  bool Dominated(const Tuple& t) const {
    for (const Tuple& s : pts_) {
      if (skyline::Compare(s, t, attrs_) == DomRelation::kDominates) {
        return true;
      }
    }
    return false;
  }

  bool DominatedOrEqual(const Tuple& t) const {
    for (const Tuple& s : pts_) {
      const DomRelation rel = skyline::Compare(s, t, attrs_);
      if (rel == DomRelation::kDominates || rel == DomRelation::kEqual) {
        return true;
      }
    }
    return false;
  }

 private:
  std::vector<int> attrs_;
  std::vector<Tuple> pts_;
};

/// Random tuple whose ranking attributes live at the given positions
/// (other positions get junk the index must ignore). Small domains
/// guarantee plenty of dominance/equality collisions; ~8% NULLs check
/// the NULL-ranks-worst convention.
Tuple RandomTuple(std::mt19937_64& rng, int arity,
                  const std::vector<int>& attrs, Value domain) {
  std::uniform_int_distribution<Value> val(0, domain - 1);
  std::uniform_int_distribution<int> null_coin(0, 11);
  Tuple t(static_cast<size_t>(arity));
  for (int a = 0; a < arity; ++a) t[static_cast<size_t>(a)] = val(rng) + 1000;
  for (int a : attrs) {
    t[static_cast<size_t>(a)] =
        null_coin(rng) == 0 ? data::kNullValue : val(rng);
  }
  return t;
}

void RunStream(int dims, int64_t num_points, Value domain, uint64_t seed) {
  // Ranking attributes are the odd positions of a (2*dims+1)-ary tuple,
  // so attribute indexing is exercised, not just identity.
  const int arity = 2 * dims + 1;
  std::vector<int> attrs;
  for (int d = 0; d < dims; ++d) attrs.push_back(2 * d + 1);

  DominanceIndex index(attrs);
  LinearReference ref(attrs);
  std::mt19937_64 rng(seed);

  for (int64_t i = 0; i < num_points; ++i) {
    const Tuple probe = RandomTuple(rng, arity, attrs, domain);
    ASSERT_EQ(ref.Dominated(probe), index.Dominated(probe))
        << "dims=" << dims << " i=" << i;
    ASSERT_EQ(ref.DominatedOrEqual(probe), index.DominatedOrEqual(probe))
        << "dims=" << dims << " i=" << i;

    const Tuple p = RandomTuple(rng, arity, attrs, domain);
    // Query the inserted point itself too: equality without strictness
    // is the easiest case to get wrong.
    ASSERT_EQ(ref.Dominated(p), index.Dominated(p))
        << "dims=" << dims << " i=" << i;
    ref.Insert(p);
    index.Insert(p);
    // Query the point right after inserting it: it equals itself (so
    // DominatedOrEqual must hold) but only an earlier strictly better
    // point makes it Dominated — the reference decides which.
    ASSERT_EQ(ref.Dominated(p), index.Dominated(p))
        << "dims=" << dims << " i=" << i;
    ASSERT_TRUE(index.DominatedOrEqual(p));
  }
  EXPECT_EQ(index.size(), num_points);
}

TEST(DominanceIndexTest, OneDimension) { RunStream(1, 400, 16, 11); }
TEST(DominanceIndexTest, TwoDimensions) { RunStream(2, 800, 16, 12); }
TEST(DominanceIndexTest, ThreeDimensions) { RunStream(3, 800, 8, 13); }
TEST(DominanceIndexTest, FourDimensions) { RunStream(4, 600, 6, 14); }
TEST(DominanceIndexTest, FiveDimensions) { RunStream(5, 500, 5, 15); }

TEST(DominanceIndexTest, LargeStreamCrossesRebuilds) {
  // Enough inserts to force several logarithmic-method kd rebuilds.
  RunStream(3, 3000, 24, 16);
}

TEST(DominanceIndexTest, ZeroDimensions) {
  DominanceIndex index({});
  const Tuple t{1, 2};
  EXPECT_FALSE(index.Dominated(t));
  EXPECT_FALSE(index.DominatedOrEqual(t));
  index.Insert(t);
  EXPECT_FALSE(index.Dominated(t));  // no attribute can be strictly less
  EXPECT_TRUE(index.DominatedOrEqual(t));  // equal over zero attributes
}

/// SkylineCollector with the pre-index linear semantics, kept verbatim
/// as the differential reference.
class LinearCollector {
 public:
  explicit LinearCollector(std::vector<int> attrs)
      : attrs_(std::move(attrs)) {}

  bool Observe(TupleId id, const Tuple& t) {
    if (!observed_.insert(id).second) return false;
    for (const Tuple& s : tuples_) {
      const DomRelation rel = skyline::Compare(s, t, attrs_);
      if (rel == DomRelation::kDominates || rel == DomRelation::kEqual) {
        return false;
      }
    }
    return AddConfirmed(id, t);
  }

  bool AddConfirmed(TupleId id, const Tuple& t) {
    if (!id_set_.insert(id).second) return false;
    ids_.push_back(id);
    tuples_.push_back(t);
    return true;
  }

  bool IsDominated(const Tuple& t) const {
    for (const Tuple& s : tuples_) {
      if (skyline::Compare(s, t, attrs_) == DomRelation::kDominates) {
        return true;
      }
    }
    return false;
  }

  bool IsDominatedOrDuplicate(const Tuple& t) const {
    for (const Tuple& s : tuples_) {
      const DomRelation rel = skyline::Compare(s, t, attrs_);
      if (rel == DomRelation::kDominates || rel == DomRelation::kEqual) {
        return true;
      }
    }
    return false;
  }

  const std::vector<TupleId>& ids() const { return ids_; }

 private:
  std::vector<int> attrs_;
  std::vector<TupleId> ids_;
  std::vector<Tuple> tuples_;
  std::unordered_set<TupleId> id_set_;
  std::unordered_set<TupleId> observed_;
};

void RunCollectorStream(int dims, int64_t num_events, Value domain,
                        uint64_t seed) {
  std::vector<int> attrs;
  for (int d = 0; d < dims; ++d) attrs.push_back(d);

  core::SkylineCollector collector(attrs);
  LinearCollector ref(attrs);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<TupleId> id_dist(0, num_events / 3);
  std::uniform_int_distribution<int> op(0, 9);

  for (int64_t i = 0; i < num_events; ++i) {
    const TupleId id = id_dist(rng);  // repeats are frequent
    const Tuple t = RandomTuple(rng, dims, attrs, domain);
    if (op(rng) < 8) {
      ASSERT_EQ(ref.Observe(id, t), collector.Observe(id, t)) << i;
    } else {
      // Unconditional confirm: the stored set need not be an antichain.
      ASSERT_EQ(ref.AddConfirmed(id, t), collector.AddConfirmed(id, t))
          << i;
    }
    const Tuple probe = RandomTuple(rng, dims, attrs, domain);
    ASSERT_EQ(ref.IsDominated(probe), collector.IsDominated(probe)) << i;
    ASSERT_EQ(ref.IsDominatedOrDuplicate(probe),
              collector.IsDominatedOrDuplicate(probe))
        << i;
  }
  EXPECT_EQ(ref.ids(), collector.ids());
}

TEST(SkylineCollectorIndexTest, TwoDimensions) {
  RunCollectorStream(2, 1200, 20, 21);
}

TEST(SkylineCollectorIndexTest, ThreeDimensions) {
  RunCollectorStream(3, 1200, 10, 22);
}

TEST(SkylineCollectorIndexTest, FourDimensions) {
  RunCollectorStream(4, 900, 7, 23);
}

}  // namespace
