#!/bin/sh
# Process-level crash-recovery test: kill hdsky_discover at every named
# recovery boundary (mid-journal-append, torn write, each stage of the
# checkpoint rename dance), resume over the same --journal directory, and
# demand the BYTE-IDENTICAL skyline CSV and anytime progress trace of an
# uninterrupted run — with the resumed run's replayed+paid accounting
# summing to exactly the uninterrupted query count (nothing charged
# twice, nothing lost).
#
# Usage: crash_recovery_test.sh <hdsky_discover>
set -u

DISCOVER=$1
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hdsky_crash.XXXXXX") || exit 1

cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# The SQ run over the route demo: ~49 queries, several checkpoint
# boundaries at --checkpoint-every 5, finishes in well under a second.
run() {
  "$DISCOVER" --demo route --n 2000 --algorithm sq --seed 7 "$@"
}

# Uninterrupted reference.
run --out "$WORK/base.csv" --trace "$WORK/base_trace.csv" \
  >"$WORK/base.txt" 2>/dev/null || fail "baseline run failed"
BASE_QUERIES=$(sed -n 's/^queries : \([0-9][0-9]*\).*/\1/p' "$WORK/base.txt")
[ -n "$BASE_QUERIES" ] || fail "could not parse baseline query count"

# resume_and_check <name> <journal-dir>: resume the crashed session and
# compare every output against the baseline.
resume_and_check() {
  name=$1
  J=$2
  run --journal "$J" --out "$WORK/$name.csv" \
    --trace "$WORK/${name}_trace.csv" \
    >"$WORK/$name.txt" 2>"$WORK/$name.err" \
    || fail "$name: resume failed: $(cat "$WORK/$name.err")"
  grep -q "resuming" "$WORK/$name.err" \
    || fail "$name: resume did not report journaled state"
  diff -q "$WORK/base.csv" "$WORK/$name.csv" >/dev/null \
    || fail "$name: resumed skyline CSV differs from baseline"
  diff -q "$WORK/base_trace.csv" "$WORK/${name}_trace.csv" >/dev/null \
    || fail "$name: resumed progress trace differs from baseline"
  # replayed + paid on the final run never exceeds the uninterrupted
  # query count: every query is answered exactly once (journal or
  # backend), and a frontier fast-forward may skip re-issuing the paid
  # prefix entirely. The byte-identical trace above already pins the
  # total query count to the baseline's.
  replayed=$(sed -n \
    's/^journal : \([0-9][0-9]*\) replayed.*/\1/p' "$WORK/$name.err")
  paid=$(sed -n \
    's/^journal : .* \([0-9][0-9]*\) paid.*/\1/p' "$WORK/$name.err")
  [ -n "$replayed" ] && [ -n "$paid" ] \
    || fail "$name: could not parse journal accounting"
  [ $((replayed + paid)) -le "$BASE_QUERIES" ] \
    || fail "$name: replayed($replayed)+paid($paid) > $BASE_QUERIES"
}

# crash_resume <name> [flags...]: run with a crash point armed (expect
# the crash exit code 137), then resume and check.
crash_resume() {
  name=$1
  shift
  J="$WORK/journal_$name"
  run --journal "$J" "$@" >"$WORK/${name}_crash.txt" 2>&1
  status=$?
  [ "$status" -eq 137 ] \
    || fail "$name: expected crash exit 137, got $status"
  resume_and_check "$name" "$J"
  echo "$name: killed at the boundary, resumed byte-identical"
}

crash_resume presync --crash-point journal.append.pre_sync:40
crash_resume torn --crash-point journal.append.torn:30
crash_resume ckpt_snapshot --checkpoint-every 5 \
  --crash-point checkpoint.pre_snapshot
crash_resume ckpt_manifest --checkpoint-every 5 \
  --crash-point checkpoint.pre_manifest
crash_resume ckpt_cleanup --checkpoint-every 5 \
  --crash-point checkpoint.pre_cleanup

# The env-armed form used by harnesses that cannot pass flags.
J="$WORK/journal_env"
HDSKY_CRASH_POINT=journal.append.pre_sync:20 run --journal "$J" \
  >/dev/null 2>&1
[ $? -eq 137 ] || fail "env: expected crash exit 137"
resume_and_check env "$J"
echo "env: HDSKY_CRASH_POINT crash resumed byte-identical"

# Crash the SAME session repeatedly at different boundaries; the final
# resume must still converge on the baseline.
J="$WORK/journal_multi"
run --journal "$J" --crash-point journal.append.torn:10 >/dev/null 2>&1
[ $? -eq 137 ] || fail "multi: first crash missing"
run --journal "$J" --checkpoint-every 3 \
  --crash-point checkpoint.pre_manifest >/dev/null 2>&1
[ $? -eq 137 ] || fail "multi: second crash missing"
run --journal "$J" --crash-point journal.append.pre_sync:8 >/dev/null 2>&1
[ $? -eq 137 ] || fail "multi: third crash missing"
resume_and_check multi "$J"
echo "multi: three consecutive crashes resumed byte-identical"

# SIGINT lands as a cooperative interrupt: whether it catches the run
# mid-flight or the run wins the race and completes, rerunning over the
# same journal must land on the baseline outputs.
J="$WORK/journal_sigint"
run --journal "$J" >"$WORK/sigint.txt" 2>"$WORK/sigint.err" &
PID=$!
sleep 0.05
kill -INT "$PID" 2>/dev/null
wait "$PID"
[ $? -eq 0 ] || fail "sigint: interrupted run did not exit cleanly"
resume_and_check sigint "$J"
echo "sigint: interrupted session resumed byte-identical"

# A journal is bound to its algorithm: resuming under a different one is
# refused loudly instead of silently diverging.
if "$DISCOVER" --demo route --n 2000 --algorithm baseline --seed 7 \
  --journal "$WORK/journal_env" >/dev/null 2>"$WORK/mismatch.err"; then
  fail "algorithm mismatch was not rejected"
fi
grep -q "algorithm" "$WORK/mismatch.err" \
  || fail "algorithm mismatch error does not name the conflict"
echo "algorithm mismatch rejected"

echo "crash recovery test passed"
