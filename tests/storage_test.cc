// Out-of-core storage suite: block-file round trips and corruption
// detection, buffer-pool residency invariants (LRU eviction order, pin
// protection, single-flight CRC verification under concurrent readers —
// the TSan target for the paged path), and the paged TopKInterface's
// differential contract against the in-memory engine.

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/block_file.h"
#include "data/encoding.h"
#include "data/buffer_pool.h"
#include "data/paged_table.h"
#include "data/table.h"
#include "dataset/pack.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "tests/test_util.h"

namespace hdsky {
namespace data {
namespace {

using dataset::PackTable;
using interface::Query;
using interface::QueryResult;
using interface::TopKInterface;
using interface::TopKOptions;

std::string TempDir(const std::string& tag) {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      ("hdsky_storage_" + tag + ".XXXXXX"))
                         .string();
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) : path(TempDir(tag)) {}
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

Table MakeTable(int64_t n, data::InterfaceType iface = InterfaceType::kRQ,
                int64_t domain = 100, uint64_t seed = 7) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = 3;
  o.domain_size = domain;
  o.distribution = dataset::Distribution::kAntiCorrelated;
  o.iface = iface;
  o.seed = seed;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

// Packs `table` under sum ranking into <dir>/<name>.hdb and returns the
// path. 64-row blocks keep many pages even for small test tables.
// Defaults to format v1 (kOff): the corruption tests below compute
// on-disk offsets from the fixed v1 page geometry.
std::string Pack(const Table& table, const std::string& dir,
                 const std::string& name, int64_t rows_per_block = 64,
                 Compression compression = Compression::kOff) {
  BlockFileOptions o;
  o.rows_per_block = rows_per_block;
  o.compression = compression;
  const std::string path = dir + "/" + name + ".hdb";
  auto rows =
      PackTable(table, interface::MakeSumRanking(), path, o);
  EXPECT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(*rows, table.num_rows());
  return path;
}

std::unique_ptr<BlockFile> OpenFile(const std::string& path) {
  auto f = BlockFile::Open(path);
  EXPECT_TRUE(f.ok()) << f.status();
  return std::move(f).value();
}

// Flips one byte of the file in place (the on-disk image a mmap'd
// reader will observe).
void FlipByte(const std::string& path, int64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(offset);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x40);
  f.seekp(offset);
  f.write(&b, 1);
}

// ---------------------------------------------------------------------------
// Block file: format round trip and corruption rejection.

TEST(StorageBlockFileTest, RoundTripContentAndRankOrder) {
  ScopedDir dir("roundtrip");
  Table table = MakeTable(500);
  const std::string path = Pack(table, dir.path, "t");

  std::unique_ptr<BlockFile> file = OpenFile(path);
  EXPECT_EQ(file->num_rows(), 500);
  EXPECT_EQ(file->num_attributes(), 3);
  EXPECT_EQ(file->ranking_name(), "linear");  // MakeSumRanking's name
  EXPECT_EQ(file->num_data_pages(), (500 + 63) / 64);
  EXPECT_EQ(file->schema().num_attributes(),
            table.schema().num_attributes());

  // The file's row sequence must be exactly the rank order the
  // in-memory interface would answer in: an unconstrained top-n query
  // returns every row, best-ranked first.
  auto iface = testutil::MakeInterface(&table, interface::MakeSumRanking(),
                                       /*k=*/500);
  auto truth = iface->Execute(Query(3));
  ASSERT_TRUE(truth.ok()) << truth.status();
  ASSERT_EQ(truth->size(), 500);

  BufferPool::Options popts;
  popts.budget_bytes = size_t{64} << 20;
  BufferPool pool(file.get(), popts);
  int64_t row = 0;
  for (int64_t b = 0; b < file->num_data_pages(); ++b) {
    auto page = pool.Pin(file->data_page_id(b));
    ASSERT_TRUE(page.ok()) << page.status();
    BlockFile::DataPageView v = file->data_page(page->data());
    for (int64_t i = 0; i < v.rows; ++i, ++row) {
      ASSERT_LT(row, 500);
      EXPECT_EQ(v.ids[i], truth->ids[static_cast<size_t>(row)]);
      for (int a = 0; a < 3; ++a) {
        EXPECT_EQ(v.values[a * v.rows + i], table.value(v.ids[i], a));
      }
    }
  }
  EXPECT_EQ(row, 500);
}

TEST(StorageBlockFileTest, BoundaryRowCounts) {
  ScopedDir dir("boundary");
  for (int64_t n : {int64_t{1}, int64_t{64}, int64_t{65}, int64_t{128}}) {
    Table table = MakeTable(n);
    const std::string path =
        Pack(table, dir.path, "n" + std::to_string(n));
    std::unique_ptr<BlockFile> file = OpenFile(path);
    EXPECT_EQ(file->num_rows(), n);
    EXPECT_EQ(file->num_data_pages(), (n + 63) / 64);

    BufferPool::Options popts;
    BufferPool pool(file.get(), popts);
    int64_t rows = 0;
    for (int64_t b = 0; b < file->num_data_pages(); ++b) {
      auto page = pool.Pin(file->data_page_id(b));
      ASSERT_TRUE(page.ok()) << page.status();
      rows += file->data_page(page->data()).rows;
    }
    EXPECT_EQ(rows, n);
  }
}

TEST(StorageBlockFileTest, PackRejectsDynamicRanking) {
  ScopedDir dir("dynamic");
  Table table = MakeTable(100);
  BlockFileOptions o;
  auto rows = PackTable(table, interface::MakeAdversarialRanking(3),
                        dir.path + "/t.hdb", o);
  EXPECT_FALSE(rows.ok());
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/t.hdb"));
}

TEST(StorageBlockFileTest, OpenRejectsTruncatedFile) {
  ScopedDir dir("truncated");
  Table table = MakeTable(300);
  const std::string path = Pack(table, dir.path, "t");
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_FALSE(BlockFile::Open(path).ok());
}

TEST(StorageBlockFileTest, OpenRejectsCorruptHeader) {
  ScopedDir dir("header");
  Table table = MakeTable(300);
  const std::string path = Pack(table, dir.path, "t");
  FlipByte(path, 3);  // inside the magic
  EXPECT_FALSE(BlockFile::Open(path).ok());
}

TEST(StorageBlockFileTest, OpenRejectsMissingFile) {
  EXPECT_FALSE(BlockFile::Open("/nonexistent/nope.hdb").ok());
}

// ---------------------------------------------------------------------------
// Buffer pool: residency accounting under a byte budget.

TEST(BufferPoolTest, EvictsInLeastRecentlyUnpinnedOrder) {
  ScopedDir dir("lru");
  Table table = MakeTable(640);  // 10 data pages of 64 rows
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options popts;
  // The pool budgets decoded frames, which for short pages are smaller
  // than the on-disk page slot — room for exactly three full frames.
  popts.budget_bytes = 3 * file->frame_bytes(1);
  BufferPool pool(file.get(), popts);
  auto touch = [&](int64_t page_id) {
    auto r = pool.Pin(page_id);
    ASSERT_TRUE(r.ok()) << r.status();
  };

  touch(1);
  touch(2);
  touch(3);
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.loads, 3u);
  EXPECT_EQ(s.hits, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.resident_pages, 3u);

  // A fourth page exceeds the budget: page 1 — least recently
  // unpinned — goes.
  touch(4);
  s = pool.stats();
  EXPECT_EQ(s.loads, 4u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.resident_pages, 3u);

  // Page 2 is still resident (hit) and becomes most recent.
  touch(2);
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.loads, 4u);

  // Reloading page 1 evicts page 3, now the coldest.
  touch(1);
  // And pinning 3 again must be a fresh load that evicts page 4.
  touch(3);
  s = pool.stats();
  EXPECT_EQ(s.loads, 6u);
  EXPECT_EQ(s.evictions, 3u);
  EXPECT_EQ(s.resident_pages, 3u);

  // Page 2 survived the whole dance.
  touch(2);
  EXPECT_EQ(pool.stats().hits, 2u);
}

TEST(BufferPoolTest, PinnedPagesSurviveBudgetPressure) {
  ScopedDir dir("pins");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options popts;
  popts.budget_bytes = 1;  // floored to one page
  BufferPool pool(file.get(), popts);
  EXPECT_EQ(pool.budget_bytes(), file->page_bytes());

  auto held = pool.Pin(1);
  ASSERT_TRUE(held.ok()) << held.status();
  const BlockFile::DataPageView before = file->data_page(held->data());
  const TupleId first_id = before.ids[0];
  const Value first_val = before.values[0];

  {
    // Over-budget churn while page 1 stays pinned.
    auto h2 = pool.Pin(2);
    ASSERT_TRUE(h2.ok()) << h2.status();
    auto h3 = pool.Pin(3);
    ASSERT_TRUE(h3.ok()) << h3.status();
    BufferPool::Stats s = pool.stats();
    EXPECT_EQ(s.resident_pages, 3u);  // nothing evictable
    EXPECT_GT(s.overcommits, 0u);
    EXPECT_EQ(s.evictions, 0u);
  }
  for (int64_t p = 4; p <= 8; ++p) {
    auto r = pool.Pin(p);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  // The pinned page was never evicted and its bytes never moved.
  BlockFile::DataPageView after = file->data_page(held->data());
  EXPECT_EQ(after.ids[0], first_id);
  EXPECT_EQ(after.values[0], first_val);
  EXPECT_EQ(pool.stats().hits, 0u);  // every other pin was a fresh load

  held = BufferPool::PageRef();  // release
  BufferPool::Stats s = pool.stats();
  EXPECT_LE(s.resident_pages, 1u);
  EXPECT_LE(s.resident_bytes, pool.budget_bytes());
}

TEST(BufferPoolTest, DropAllSparesPinnedPages) {
  ScopedDir dir("dropall");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options popts;
  popts.budget_bytes = 8 * file->page_bytes();
  BufferPool pool(file.get(), popts);
  auto held = pool.Pin(1);
  ASSERT_TRUE(held.ok()) << held.status();
  { auto r = pool.Pin(2); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Pin(3); ASSERT_TRUE(r.ok()); }

  pool.DropAll();
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.evictions, 2u);
  EXPECT_EQ(s.resident_pages, 1u);

  // The pinned page answers from residency; the dropped one reloads.
  { auto r = pool.Pin(1); ASSERT_TRUE(r.ok()); }
  { auto r = pool.Pin(2); ASSERT_TRUE(r.ok()); }
  s = pool.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.loads, 4u);
}

TEST(BufferPoolTest, CorruptDataPageFailsEveryPin) {
  ScopedDir dir("crcdata");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  {
    // Corrupt a value byte in data page 2's payload before mapping.
    std::unique_ptr<BlockFile> probe = OpenFile(path);
    FlipByte(path, static_cast<int64_t>(2 * probe->page_bytes()) +
                       kPageHeaderBytes + 24);
  }
  std::unique_ptr<BlockFile> file = OpenFile(path);  // header is intact

  BufferPool::Options popts;
  BufferPool pool(file.get(), popts);
  { auto r = pool.Pin(1); EXPECT_TRUE(r.ok()) << r.status(); }
  auto bad = pool.Pin(2);
  EXPECT_FALSE(bad.ok());
  // A retry re-reads and re-fails; the page never becomes resident.
  auto again = pool.Pin(2);
  EXPECT_FALSE(again.ok());
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.crc_failures, 2u);
  EXPECT_EQ(s.resident_pages, 1u);
}

TEST(BufferPoolTest, CorruptIndexPageFailsPin) {
  ScopedDir dir("crcindex");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  int64_t index_page = 0;
  size_t page_bytes = 0;
  {
    std::unique_ptr<BlockFile> probe = OpenFile(path);
    ASSERT_GE(probe->num_index_levels(), 1);
    index_page = probe->index_page_id(0, 0);
    page_bytes = probe->page_bytes();
  }
  FlipByte(path, static_cast<int64_t>(page_bytes) * index_page +
                     kPageHeaderBytes + 8);
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options popts;
  BufferPool pool(file.get(), popts);
  EXPECT_FALSE(pool.Pin(index_page).ok());
  EXPECT_EQ(pool.stats().crc_failures, 1u);
}

TEST(BufferPoolTest, ConcurrentReadersStayCoherent) {
  ScopedDir dir("threads");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);
  const int64_t data_pages = file->num_data_pages();

  // Reference copy of every page, read through a roomy pool.
  std::vector<std::vector<TupleId>> want_ids(
      static_cast<size_t>(data_pages));
  std::vector<std::vector<Value>> want_vals(
      static_cast<size_t>(data_pages));
  {
    BufferPool::Options roomy;
    BufferPool ref_pool(file.get(), roomy);
    for (int64_t b = 0; b < data_pages; ++b) {
      auto page = ref_pool.Pin(file->data_page_id(b));
      ASSERT_TRUE(page.ok()) << page.status();
      BlockFile::DataPageView v = file->data_page(page->data());
      want_ids[static_cast<size_t>(b)].assign(v.ids, v.ids + v.rows);
      want_vals[static_cast<size_t>(b)].assign(
          v.values, v.values + 3 * v.rows);
    }
  }

  // Two-page budget over ten data pages: every thread's pins contend
  // on load, eviction, and the single-flight CRC path.
  BufferPool::Options tiny;
  tiny.budget_bytes = 2 * file->page_bytes();
  BufferPool pool(file.get(), tiny);

  constexpr int kThreads = 8;
  constexpr int kIters = 300;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<uint32_t>(1000 + t));
      std::uniform_int_distribution<int64_t> pick(0, data_pages - 1);
      for (int i = 0; i < kIters; ++i) {
        const int64_t b = pick(rng);
        auto page = pool.Pin(file->data_page_id(b));
        if (!page.ok()) {
          ++mismatches;
          continue;
        }
        BlockFile::DataPageView v = file->data_page(page->data());
        const auto& ids = want_ids[static_cast<size_t>(b)];
        const auto& vals = want_vals[static_cast<size_t>(b)];
        if (v.rows != static_cast<int64_t>(ids.size()) ||
            v.ids[0] != ids[0] ||
            v.ids[v.rows - 1] != ids[ids.size() - 1] ||
            v.values[3 * v.rows - 1] != vals[vals.size() - 1]) {
          ++mismatches;
        }
        if (i % 64 == 0 && t == 0) pool.DropAll();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);

  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.hits + s.loads,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(s.crc_failures, 0u);
  EXPECT_LE(s.resident_bytes, pool.budget_bytes());
}

// ---------------------------------------------------------------------------
// Paged interface: differential contract against the in-memory engine.

// Asserts the two answers are bit-identical.
void ExpectSameAnswer(const QueryResult& got, const QueryResult& want) {
  EXPECT_EQ(got.overflow, want.overflow);
  EXPECT_EQ(got.ids, want.ids);
  EXPECT_EQ(got.tuples, want.tuples);
}

struct PagedFixture {
  Table table;
  std::unique_ptr<PagedTable> paged;
  std::unique_ptr<TopKInterface> iface;      // out-of-core
  std::unique_ptr<TopKInterface> in_memory;  // ground truth

  PagedFixture(const std::string& dir, int64_t n, int k,
               data::InterfaceType iface_type = InterfaceType::kRQ,
               size_t pool_bytes = 8192)
      : table(MakeTable(n, iface_type, /*domain=*/50)) {
    Init(dir, k, pool_bytes);
  }

  // ASSERT_* needs a void-returning frame, which a constructor is not.
  void Init(const std::string& dir, int k, size_t pool_bytes) {
    const std::string path = Pack(table, dir, "t");
    PagedTableOptions popts;
    popts.buffer_pool_bytes = pool_bytes;  // tiny: evicts during queries
    auto p = PagedTable::Open(path, popts);
    ASSERT_TRUE(p.ok()) << p.status();
    paged = std::move(p).value();
    TopKOptions topts;
    topts.k = k;
    auto i = TopKInterface::CreatePaged(paged.get(), topts);
    ASSERT_TRUE(i.ok()) << i.status();
    iface = std::move(i).value();
    in_memory =
        testutil::MakeInterface(&table, interface::MakeSumRanking(), k);
  }
};

TEST(PagedInterfaceTest, MatchesInMemoryOnRandomQueries) {
  ScopedDir dir("diff");
  PagedFixture fx(dir.path, /*n=*/2000, /*k=*/10);

  std::vector<Query> battery;
  battery.push_back(Query(3));  // unconstrained
  battery.push_back(Query(3).AddAtMost(0, 25));
  battery.push_back(Query(3).AddEquals(0, 7).AddEquals(1, 7));
  battery.push_back(Query(3).AddEquals(0, 1).AddEquals(1, 1).AddEquals(2, 1));
  battery.push_back(Query(3).AddAtLeast(0, 49).AddAtMost(0, 0));  // empty
  battery.push_back(Query(3).AddAtLeast(0, 5000));  // out of domain
  std::mt19937 rng(99);
  std::uniform_int_distribution<Value> val(0, 49);
  std::uniform_int_distribution<int> nconstraints(1, 3);
  for (int i = 0; i < 60; ++i) {
    Query q(3);
    const int c = nconstraints(rng);
    for (int j = 0; j < c; ++j) {
      const int attr = j;
      switch (i % 3) {
        case 0: q.AddAtMost(attr, val(rng)); break;
        case 1: q.AddAtLeast(attr, val(rng)); break;
        default: q.AddEquals(attr, val(rng)); break;
      }
    }
    battery.push_back(q);
  }

  for (size_t i = 0; i < battery.size(); ++i) {
    auto got = fx.iface->Execute(battery[i]);
    auto want = fx.in_memory->Execute(battery[i]);
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_TRUE(want.ok()) << want.status();
    SCOPED_TRACE("query #" + std::to_string(i));
    ExpectSameAnswer(*got, *want);
  }
  // The tiny pool really was exercised out-of-core.
  EXPECT_GT(fx.paged->pool_stats().evictions, 0u);
}

TEST(PagedInterfaceTest, BufferReuseExecuteMatches) {
  ScopedDir dir("reuse");
  PagedFixture fx(dir.path, /*n=*/1000, /*k=*/5);

  QueryResult out;
  for (Value v = 0; v < 20; ++v) {
    Query q(3);
    q.AddAtMost(0, v);
    common::Status s = fx.iface->Execute(q, &out);
    ASSERT_TRUE(s.ok()) << s;
    auto want = fx.in_memory->Execute(q);
    ASSERT_TRUE(want.ok()) << want.status();
    ExpectSameAnswer(out, *want);
  }
}

TEST(PagedInterfaceTest, EnforcesQueryBudget) {
  ScopedDir dir("budget");
  Table table = MakeTable(300);
  const std::string path = Pack(table, dir.path, "t");
  PagedTableOptions popts;
  auto paged = PagedTable::Open(path, popts);
  ASSERT_TRUE(paged.ok()) << paged.status();
  TopKOptions topts;
  topts.k = 5;
  topts.query_budget = 3;
  auto iface = TopKInterface::CreatePaged(paged->get(), topts);
  ASSERT_TRUE(iface.ok()) << iface.status();

  for (int i = 0; i < 3; ++i) {
    Query q(3);
    q.AddAtMost(0, static_cast<Value>(i));
    EXPECT_TRUE((*iface)->Execute(q).ok());
  }
  EXPECT_EQ((*iface)->RemainingBudget(), 0);
  auto spent = (*iface)->Execute(Query(3));
  EXPECT_FALSE(spent.ok());
  EXPECT_TRUE(spent.status().IsResourceExhausted());
  EXPECT_EQ((*iface)->stats().queries_issued, 3);
}

TEST(PagedInterfaceTest, RejectsUnsupportedPredicates) {
  ScopedDir dir("unsupported");
  // SQ attributes accept only upper bounds / equality; a lower bound
  // must be rejected without being charged.
  Table table = MakeTable(300, InterfaceType::kSQ);
  const std::string path = Pack(table, dir.path, "t");
  PagedTableOptions popts;
  auto paged = PagedTable::Open(path, popts);
  ASSERT_TRUE(paged.ok()) << paged.status();
  TopKOptions topts;
  topts.k = 5;
  auto iface = TopKInterface::CreatePaged(paged->get(), topts);
  ASSERT_TRUE(iface.ok()) << iface.status();

  Query q(3);
  q.AddAtLeast(0, 5);
  auto r = (*iface)->Execute(q);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnsupported());
  EXPECT_EQ((*iface)->stats().queries_issued, 0);
  EXPECT_EQ((*iface)->stats().rejected_queries, 1);
}

// ---------------------------------------------------------------------------
// Format v2: compressed pages, backward compatibility, corruption.

TEST(StorageBlockFileTest, CompressedRoundTripMatchesRaw) {
  ScopedDir dir("v2roundtrip");
  // Big blocks so the v1 slot dwarfs the 4 KiB alignment quantum the
  // v2 pages round up to — otherwise tiny pages can't shrink.
  Table table = MakeTable(3000);
  const std::string v1 =
      Pack(table, dir.path, "v1", 512, Compression::kOff);
  const std::string v2 =
      Pack(table, dir.path, "v2", 512, Compression::kAuto);

  std::unique_ptr<BlockFile> f1 = OpenFile(v1);
  std::unique_ptr<BlockFile> f2 = OpenFile(v2);
  EXPECT_EQ(f1->version(), 1);
  EXPECT_FALSE(f1->compressed());
  EXPECT_EQ(f2->version(), 2);
  EXPECT_TRUE(f2->compressed());
  ASSERT_EQ(f1->num_data_pages(), f2->num_data_pages());
  ASSERT_EQ(f1->num_index_levels(), f2->num_index_levels());

  // Low-cardinality anti-correlated data in rank order: the encoded
  // file must be substantially smaller.
  EXPECT_LT(std::filesystem::file_size(v2),
            std::filesystem::file_size(v1) / 2);

  // Every decoded frame — data and index — must be bit-identical.
  BufferPool::Options popts;
  BufferPool p1(f1.get(), popts);
  BufferPool p2(f2.get(), popts);
  for (int64_t page = 1; page < f1->total_pages(); ++page) {
    auto r1 = p1.Pin(page);
    auto r2 = p2.Pin(page);
    ASSERT_TRUE(r1.ok()) << r1.status();
    ASSERT_TRUE(r2.ok()) << r2.status();
    ASSERT_EQ(f1->frame_bytes(page), f2->frame_bytes(page));
    EXPECT_EQ(std::memcmp(r1->data(), r2->data(), f1->frame_bytes(page)),
              0)
        << "page " << page;
  }
}

TEST(StorageBlockFileTest, V1FilesStillOpenUnchanged) {
  ScopedDir dir("v1compat");
  Table table = MakeTable(300);
  const std::string path = Pack(table, dir.path, "t");  // kOff default
  std::unique_ptr<BlockFile> file = OpenFile(path);
  EXPECT_EQ(file->version(), 1);
  EXPECT_EQ(file->num_rows(), 300);
  BufferPool::Options popts;
  BufferPool pool(file.get(), popts);
  int64_t rows = 0;
  for (int64_t b = 0; b < file->num_data_pages(); ++b) {
    auto page = pool.Pin(file->data_page_id(b));
    ASSERT_TRUE(page.ok()) << page.status();
    rows += file->data_page(page->data()).rows;
  }
  EXPECT_EQ(rows, 300);
}

TEST(StorageBlockFileTest, CorruptCompressedPayloadFailsPin) {
  ScopedDir dir("v2crc");
  Table table = MakeTable(640);
  const std::string path =
      Pack(table, dir.path, "t", 64, Compression::kAuto);
  uint64_t payload_off = 0;
  {
    std::unique_ptr<BlockFile> probe = OpenFile(path);
    ASSERT_TRUE(probe->compressed());
    // A byte inside data page 2's encoded payload, past the page's
    // {crc, count} prologue and the first run header.
    payload_off = probe->extent(2).offset + kPageHeaderBytes +
                  kRunHeaderBytes + 2;
  }
  FlipByte(path, static_cast<int64_t>(payload_off));
  std::unique_ptr<BlockFile> file = OpenFile(path);  // header + dir intact

  BufferPool::Options popts;
  BufferPool pool(file.get(), popts);
  { auto r = pool.Pin(1); EXPECT_TRUE(r.ok()) << r.status(); }
  EXPECT_FALSE(pool.Pin(2).ok());
  EXPECT_FALSE(pool.Pin(2).ok());  // retry re-reads and re-fails
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.crc_failures, 2u);
  EXPECT_EQ(s.resident_pages, 1u);
}

TEST(StorageBlockFileTest, CorruptPageDirectoryFailsOpen) {
  ScopedDir dir("v2dir");
  Table table = MakeTable(300);
  const std::string path =
      Pack(table, dir.path, "t", 64, Compression::kAuto);
  // The directory trailer ends the file; its CRC is the last 4 bytes
  // and an entry byte sits just before them.
  const auto size = std::filesystem::file_size(path);
  FlipByte(path, static_cast<int64_t>(size) - 10);
  EXPECT_FALSE(BlockFile::Open(path).ok());
}

// ---------------------------------------------------------------------------
// Read paths and readahead.

TEST(BufferPoolTest, PreadPathServesIdenticalFrames) {
  ScopedDir dir("pread");
  Table table = MakeTable(640);
  for (const Compression comp : {Compression::kOff, Compression::kAuto}) {
    const std::string path =
        Pack(table, dir.path,
             comp == Compression::kOff ? "raw" : "comp", 64, comp);
    std::unique_ptr<BlockFile> file = OpenFile(path);

    BufferPool::Options mopts;
    mopts.read_path = ReadPathKind::kMmap;
    BufferPool mmap_pool(file.get(), mopts);
    BufferPool::Options popts;
    popts.read_path = ReadPathKind::kPread;
    popts.readahead_pages = 4;
    BufferPool pread_pool(file.get(), popts);
    EXPECT_STREQ(mmap_pool.read_path_name(), "mmap");
    EXPECT_STREQ(pread_pool.read_path_name(), "pread");

    for (int64_t page = 1; page < file->total_pages(); ++page) {
      auto a = mmap_pool.Pin(page);
      auto b = pread_pool.Pin(page);
      ASSERT_TRUE(a.ok()) << a.status();
      ASSERT_TRUE(b.ok()) << b.status();
      EXPECT_EQ(std::memcmp(a->data(), b->data(), file->frame_bytes(page)),
                0);
    }
    // Both paths read the same stored bytes for the same pages.
    EXPECT_EQ(mmap_pool.stats().bytes_read, pread_pool.stats().bytes_read);
    EXPECT_GT(pread_pool.stats().bytes_read, 0u);
  }
}

TEST(BufferPoolTest, BudgetClampIsReported) {
  ScopedDir dir("clamp");
  Table table = MakeTable(300);
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options tiny;
  tiny.budget_bytes = 1;
  BufferPool clamped(file.get(), tiny);
  EXPECT_TRUE(clamped.budget_was_clamped());
  EXPECT_EQ(clamped.requested_budget_bytes(), 1u);
  EXPECT_EQ(clamped.budget_bytes(), file->page_bytes());

  BufferPool::Options roomy;
  BufferPool fine(file.get(), roomy);
  EXPECT_FALSE(fine.budget_was_clamped());
  EXPECT_EQ(fine.requested_budget_bytes(), fine.budget_bytes());
}

TEST(BufferPoolReadaheadTest, PrefetchedPagesCountAsPrefetchHits) {
  ScopedDir dir("prefetch");
  Table table = MakeTable(640);  // 10 data pages
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options popts;
  popts.read_path = ReadPathKind::kPread;
  popts.readahead_pages = 8;
  popts.budget_bytes = size_t{64} << 20;  // plenty of headroom
  BufferPool pool(file.get(), popts);

  // Hint every data page, then wait for the worker by pinning each:
  // a pin either finds the loaded frame (prefetch hit) or loads it
  // itself — both must serve identical bytes and account consistently.
  std::vector<int64_t> ids;
  for (int64_t b = 0; b < file->num_data_pages(); ++b) {
    ids.push_back(file->data_page_id(b));
  }
  pool.Prefetch(ids.data(), static_cast<int>(ids.size()));
  int64_t rows = 0;
  for (const int64_t id : ids) {
    auto r = pool.Pin(id);
    ASSERT_TRUE(r.ok()) << r.status();
    rows += file->data_page(r->data()).rows;
  }
  EXPECT_EQ(rows, 640);

  BufferPool::Stats s = pool.stats();
  EXPECT_GT(s.prefetch_issued, 0u);
  EXPECT_EQ(s.prefetch_loads, s.prefetch_hits);
  // Every data page was loaded exactly once, by the worker or by a pin.
  EXPECT_EQ(s.loads, static_cast<uint64_t>(file->num_data_pages()));
  // Every pin was served: prefetched frames count as hits, the rest as
  // this thread's own loads.
  EXPECT_EQ(s.hits + (s.loads - s.prefetch_loads),
            static_cast<uint64_t>(file->num_data_pages()));
  EXPECT_GT(s.bytes_read, 0u);
}

TEST(BufferPoolReadaheadTest, ChurnPoolNeverPrefetchEvicts) {
  ScopedDir dir("churnguard");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);

  BufferPool::Options popts;
  popts.read_path = ReadPathKind::kPread;
  popts.readahead_pages = 8;
  popts.budget_bytes = file->page_bytes();  // one frame of budget
  BufferPool pool(file.get(), popts);

  for (int round = 0; round < 3; ++round) {
    for (int64_t b = 0; b < file->num_data_pages(); ++b) {
      auto held = pool.Pin(file->data_page_id(b));
      ASSERT_TRUE(held.ok()) << held.status();
      std::vector<int64_t> ahead;
      for (int64_t nb = b + 1; nb < file->num_data_pages(); ++nb) {
        ahead.push_back(file->data_page_id(nb));
      }
      pool.Prefetch(ahead.data(), static_cast<int>(ahead.size()));
    }
  }
  // With the whole budget held by the pinned page, every readahead
  // hint must have been dropped, not loaded over the budget.
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.prefetch_loads, 0u);
  EXPECT_LE(s.resident_bytes, pool.budget_bytes());
}

TEST(BufferPoolReadaheadTest, ConcurrentPinsAndPrefetchStayCoherent) {
  ScopedDir dir("rathreads");
  Table table = MakeTable(640);
  const std::string path = Pack(table, dir.path, "t");
  std::unique_ptr<BlockFile> file = OpenFile(path);
  const int64_t data_pages = file->num_data_pages();

  std::vector<std::vector<TupleId>> want_ids(
      static_cast<size_t>(data_pages));
  {
    BufferPool::Options roomy;
    BufferPool ref_pool(file.get(), roomy);
    for (int64_t b = 0; b < data_pages; ++b) {
      auto page = ref_pool.Pin(file->data_page_id(b));
      ASSERT_TRUE(page.ok()) << page.status();
      BlockFile::DataPageView v = file->data_page(page->data());
      want_ids[static_cast<size_t>(b)].assign(v.ids, v.ids + v.rows);
    }
  }

  // Three-page budget, pread + readahead worker live, every thread
  // racing pins, hints, and DropAll: the TSan target for the
  // asynchronous readahead pipeline.
  BufferPool::Options tiny;
  tiny.budget_bytes = 3 * file->page_bytes();
  tiny.read_path = ReadPathKind::kPread;
  tiny.readahead_pages = 4;
  BufferPool pool(file.get(), tiny);

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::mt19937 rng(static_cast<uint32_t>(7000 + t));
      std::uniform_int_distribution<int64_t> pick(0, data_pages - 1);
      for (int i = 0; i < kIters; ++i) {
        const int64_t b = pick(rng);
        const int64_t ahead[2] = {
            file->data_page_id((b + 1) % data_pages),
            file->data_page_id((b + 2) % data_pages)};
        pool.Prefetch(ahead, 2);
        auto page = pool.Pin(file->data_page_id(b));
        if (!page.ok()) {
          ++mismatches;
          continue;
        }
        BlockFile::DataPageView v = file->data_page(page->data());
        const auto& ids = want_ids[static_cast<size_t>(b)];
        if (v.rows != static_cast<int64_t>(ids.size()) ||
            v.ids[0] != ids[0] ||
            v.ids[v.rows - 1] != ids[ids.size() - 1]) {
          ++mismatches;
        }
        if (i % 64 == 0 && t == 0) pool.DropAll();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
  BufferPool::Stats s = pool.stats();
  EXPECT_EQ(s.crc_failures, 0u);
}

// ---------------------------------------------------------------------------
// Differential battery over the full format x read-path matrix.

TEST(PagedInterfaceTest, MatchesInMemoryAcrossFormatsAndReadPaths) {
  ScopedDir dir("matrix");
  Table table = MakeTable(2000, InterfaceType::kRQ, /*domain=*/50);
  auto in_memory =
      testutil::MakeInterface(&table, interface::MakeSumRanking(), 10);

  std::vector<Query> battery;
  battery.push_back(Query(3));
  battery.push_back(Query(3).AddAtMost(0, 25));
  battery.push_back(Query(3).AddEquals(0, 7).AddEquals(1, 7));
  battery.push_back(Query(3).AddAtLeast(0, 49).AddAtMost(0, 0));
  battery.push_back(Query(3).AddAtLeast(0, 5000));
  std::mt19937 rng(41);
  std::uniform_int_distribution<Value> val(0, 49);
  for (int i = 0; i < 25; ++i) {
    Query q(3);
    q.AddAtMost(i % 3, val(rng));
    if (i % 2 == 0) q.AddAtLeast((i + 1) % 3, val(rng));
    battery.push_back(q);
  }

  for (const Compression comp : {Compression::kOff, Compression::kAuto}) {
    const std::string path =
        Pack(table, dir.path,
             comp == Compression::kOff ? "raw" : "comp", 64, comp);
    for (const ReadPathKind kind :
         {ReadPathKind::kMmap, ReadPathKind::kPread}) {
      SCOPED_TRACE(std::string(comp == Compression::kOff ? "raw" : "comp") +
                   "/" + (kind == ReadPathKind::kMmap ? "mmap" : "pread"));
      PagedTableOptions popts;
      popts.buffer_pool_bytes = 8192;  // tiny: evicts during queries
      popts.read_path = kind;
      popts.readahead_pages = 4;
      auto paged = PagedTable::Open(path, popts);
      ASSERT_TRUE(paged.ok()) << paged.status();
      TopKOptions topts;
      topts.k = 10;
      auto iface = TopKInterface::CreatePaged(paged->get(), topts);
      ASSERT_TRUE(iface.ok()) << iface.status();

      for (size_t i = 0; i < battery.size(); ++i) {
        auto got = (*iface)->Execute(battery[i]);
        auto want = in_memory->Execute(battery[i]);
        ASSERT_TRUE(got.ok()) << got.status();
        ASSERT_TRUE(want.ok()) << want.status();
        SCOPED_TRACE("query #" + std::to_string(i));
        ExpectSameAnswer(*got, *want);
      }
      EXPECT_GT((*paged)->pool_stats().evictions, 0u);
    }
  }
}

TEST(PagedInterfaceTest, ConcurrentQueriesMatchSerial) {
  ScopedDir dir("parallel");
  PagedFixture fx(dir.path, /*n=*/1500, /*k=*/8);

  // Serial ground truth for a fixed query set, then the same set
  // answered from many threads through the tiny shared pool.
  std::vector<Query> queries;
  for (Value v = 0; v < 32; ++v) {
    Query q(3);
    q.AddAtMost(v % 3, v);
    queries.push_back(q);
  }
  std::vector<QueryResult> want;
  for (const Query& q : queries) {
    auto r = fx.in_memory->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status();
    want.push_back(std::move(r).value());
  }

  constexpr int kThreads = 6;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < queries.size() * 4;
           i += kThreads) {
        const size_t qi = i % queries.size();
        auto got = fx.iface->Execute(queries[qi]);
        if (!got.ok() || got->ids != want[qi].ids ||
            got->overflow != want[qi].overflow) {
          ++mismatches;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace data
}  // namespace hdsky
