// Tests for the cross-session SharedQueryCache: single-flight ownership,
// waiter resolution, error non-memoization, eviction bounds, and a
// multi-threaded stampede (the TSan CI job's SharedCache stress).

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "service/shared_cache.h"

namespace hdsky {
namespace service {
namespace {

using common::Status;
using interface::QueryResult;

std::shared_ptr<const QueryResult> MakeResult(int64_t id) {
  auto r = std::make_shared<QueryResult>();
  r->ids.push_back(id);
  return r;
}

TEST(SharedCacheTest, FirstLookupOwnsLaterLookupsHit) {
  SharedQueryCache cache;
  std::shared_ptr<const QueryResult> out;
  int owner_cb = 0;
  ASSERT_EQ(cache.StartLookup(
                "q1", &out,
                [&](const Status& s, const auto& r) {
                  EXPECT_TRUE(s.ok());
                  ASSERT_NE(r, nullptr);
                  EXPECT_EQ(r->ids[0], 7);
                  ++owner_cb;
                }),
            SharedQueryCache::Lookup::kOwner);
  cache.Complete("q1", Status::OK(), MakeResult(7));
  EXPECT_EQ(owner_cb, 1);

  ASSERT_EQ(cache.StartLookup("q1", &out, nullptr),
            SharedQueryCache::Lookup::kHit);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->ids[0], 7);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_EQ(cache.stats().owners, 1);
}

TEST(SharedCacheTest, WaitersJoinTheFlightAndAllResolve) {
  SharedQueryCache cache;
  std::shared_ptr<const QueryResult> out;
  int resolved = 0;
  auto cb = [&](const Status& s, const auto& r) {
    EXPECT_TRUE(s.ok());
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->ids[0], 3);
    ++resolved;
  };
  ASSERT_EQ(cache.StartLookup("k", &out, cb),
            SharedQueryCache::Lookup::kOwner);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(cache.StartLookup("k", &out, cb),
              SharedQueryCache::Lookup::kWait);
  }
  EXPECT_EQ(resolved, 0);  // nothing fires before Complete
  cache.Complete("k", Status::OK(), MakeResult(3));
  EXPECT_EQ(resolved, 6);  // owner + 5 waiters, one Complete
  EXPECT_EQ(cache.stats().joins, 5);
}

TEST(SharedCacheTest, ErrorsResolveWaitersButAreNotMemoized) {
  SharedQueryCache cache;
  std::shared_ptr<const QueryResult> out;
  int failures = 0;
  auto cb = [&](const Status& s, const auto& r) {
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(r, nullptr);
    ++failures;
  };
  ASSERT_EQ(cache.StartLookup("k", &out, cb),
            SharedQueryCache::Lookup::kOwner);
  ASSERT_EQ(cache.StartLookup("k", &out, cb),
            SharedQueryCache::Lookup::kWait);
  cache.Complete("k", Status::IOError("backend down"), nullptr);
  EXPECT_EQ(failures, 2);
  EXPECT_EQ(cache.size(), 0u);
  // A transient failure must not poison the key: the next lookup starts
  // a fresh flight and can succeed.
  ASSERT_EQ(cache.StartLookup(
                "k", &out, [&](const Status& s, const auto&) {
                  EXPECT_TRUE(s.ok());
                }),
            SharedQueryCache::Lookup::kOwner);
  cache.Complete("k", Status::OK(), MakeResult(1));
  ASSERT_EQ(cache.StartLookup("k", &out, nullptr),
            SharedQueryCache::Lookup::kHit);
}

TEST(SharedCacheTest, CompleteForUnknownKeyIsANoOp) {
  SharedQueryCache cache;
  cache.Complete("never-started", Status::OK(), MakeResult(1));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(SharedCacheTest, EvictionKeepsReadyEntriesBounded) {
  SharedQueryCache::Options options;
  options.max_entries = 32;
  SharedQueryCache cache(options);
  std::shared_ptr<const QueryResult> out;
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    ASSERT_EQ(cache.StartLookup(key, &out, nullptr),
              SharedQueryCache::Lookup::kOwner);
    cache.Complete(key, Status::OK(), MakeResult(i));
  }
  // Per-shard slack allows a little overshoot, but the cache must stay
  // within a small multiple of the configured bound, far below 1000.
  EXPECT_LE(cache.size(), 32u + 32u);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(SharedCacheTest, ConcurrentStampedePaysBackendOnce) {
  // 8 threads race 200 keys; every key must get exactly one owner, and
  // every participant must observe the owner's result.
  SharedQueryCache cache;
  constexpr int kThreads = 8;
  constexpr int kKeys = 200;
  std::atomic<int> owners{0};
  std::atomic<int> resolved{0};
  std::atomic<int> hits{0};
  {
    std::vector<std::jthread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < kKeys; ++i) {
          const std::string key = "key-" + std::to_string(i);
          std::shared_ptr<const interface::QueryResult> out;
          auto cb = [&resolved, i](const Status& s, const auto& r) {
            ASSERT_TRUE(s.ok());
            ASSERT_NE(r, nullptr);
            EXPECT_EQ(r->ids[0], i);
            resolved.fetch_add(1);
          };
          switch (cache.StartLookup(key, &out, cb)) {
            case SharedQueryCache::Lookup::kOwner:
              owners.fetch_add(1);
              // The "backend execution": complete with the key's value.
              cache.Complete(key, Status::OK(), MakeResult(i));
              break;
            case SharedQueryCache::Lookup::kWait:
              break;
            case SharedQueryCache::Lookup::kHit:
              ASSERT_NE(out, nullptr);
              EXPECT_EQ(out->ids[0], i);
              hits.fetch_add(1);
              break;
          }
        }
      });
    }
  }
  EXPECT_EQ(owners.load(), kKeys);  // single flight per key
  // Everyone got an answer, through one of the three paths.
  EXPECT_EQ(resolved.load() + hits.load(), kThreads * kKeys);
  EXPECT_EQ(cache.size(), static_cast<size_t>(kKeys));
}

}  // namespace
}  // namespace service
}  // namespace hdsky
