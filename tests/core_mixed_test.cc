// Correctness tests for the BASELINE crawler, MIXED-DB-SKY, and the
// generic MQ-DB-SKY dispatcher across interface mixtures.

#include <set>

#include <gtest/gtest.h>

#include "core/baseline_crawler.h"
#include "core/mq_db_sky.h"
#include "core/rq_db_sky.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::AttributeKind;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::TupleId;
using interface::MakeLayeredRandomRanking;
using interface::MakeSumRanking;
using testutil::ExpectExactSkyline;
using testutil::ExpectSoundSubset;
using testutil::MakeInterface;

// Builds a table whose ranking attributes carry the given interface
// types, values uniform over the given domains.
Table MakeMixed(const std::vector<InterfaceType>& ifaces,
                const std::vector<data::Value>& domains, int64_t n,
                uint64_t seed, int num_filter = 0) {
  std::vector<data::AttributeSpec> attrs;
  for (size_t i = 0; i < ifaces.size(); ++i) {
    attrs.push_back({"A" + std::to_string(i), AttributeKind::kRanking,
                     ifaces[i], 0, domains[i]});
  }
  for (int f = 0; f < num_filter; ++f) {
    attrs.push_back({"F" + std::to_string(f), AttributeKind::kFiltering,
                     InterfaceType::kFilterEquality, 0, 3});
  }
  Table t(std::move(Schema::Create(std::move(attrs))).value());
  common::Rng rng(seed);
  data::Tuple tuple(attrs.size() + ifaces.size() - ifaces.size());
  tuple.resize(static_cast<size_t>(t.schema().num_attributes()));
  for (int64_t r = 0; r < n; ++r) {
    for (size_t i = 0; i < ifaces.size(); ++i) {
      tuple[i] = rng.UniformInt(0, domains[i]);
    }
    for (int f = 0; f < num_filter; ++f) {
      tuple[ifaces.size() + static_cast<size_t>(f)] =
          rng.UniformInt(0, 3);
    }
    EXPECT_TRUE(t.Append(tuple).ok());
  }
  return t;
}

// ---------------------------------------------------------------------
// BASELINE crawler

TEST(CrawlerTest, CrawlsEverythingOnRqInterface) {
  dataset::SyntheticOptions o;
  o.num_tuples = 1500;
  o.num_attributes = 3;
  o.domain_size = 200;
  o.seed = 90;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  for (int k : {1, 5, 50}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), k);
    auto crawl = CrawlDatabase(iface.get());
    ASSERT_TRUE(crawl.ok()) << crawl.status();
    EXPECT_TRUE(crawl->complete);
    EXPECT_EQ(static_cast<int64_t>(crawl->ids.size()), t.num_rows());
    std::set<TupleId> distinct(crawl->ids.begin(), crawl->ids.end());
    EXPECT_EQ(static_cast<int64_t>(distinct.size()), t.num_rows());
  }
}

TEST(CrawlerTest, LargerKCostsFewer) {
  dataset::SyntheticOptions o;
  o.num_tuples = 2000;
  o.num_attributes = 3;
  o.domain_size = 300;
  o.seed = 91;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  int64_t prev = -1;
  for (int k : {1, 10, 50}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), k);
    auto crawl = CrawlDatabase(iface.get());
    ASSERT_TRUE(crawl.ok());
    if (prev > 0) {
      EXPECT_LT(crawl->query_cost, prev);
    }
    prev = crawl->query_cost;
  }
}

TEST(CrawlerTest, CrawlRegionRespectsRegion) {
  dataset::SyntheticOptions o;
  o.num_tuples = 800;
  o.num_attributes = 2;
  o.domain_size = 100;
  o.seed = 92;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  interface::Query region(2);
  region.AddAtMost(0, 30).AddAtLeast(1, 50);
  auto crawl = CrawlRegion(iface.get(), region);
  ASSERT_TRUE(crawl.ok());
  EXPECT_TRUE(crawl->complete);
  int64_t expected = 0;
  for (TupleId r = 0; r < t.num_rows(); ++r) {
    if (region.MatchesRow(t, r)) ++expected;
  }
  EXPECT_EQ(static_cast<int64_t>(crawl->ids.size()), expected);
  for (size_t i = 0; i < crawl->tuples.size(); ++i) {
    EXPECT_TRUE(region.MatchesTuple(crawl->tuples[i]));
  }
}

TEST(CrawlerTest, DuplicateHeavyRegionsNeedFiltering) {
  // More than k tuples share every ranking value; the crawler falls back
  // to enumerating the filtering attribute.
  const Table t = MakeMixed({InterfaceType::kRQ, InterfaceType::kRQ},
                            {1, 1}, 60, 93, /*num_filter=*/1);
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  auto crawl = CrawlDatabase(iface.get());
  ASSERT_TRUE(crawl.ok());
  // 60 tuples over a 2x2 ranking grid with 4 filter values: 16 cells,
  // some cells still exceed k = 5 -> incomplete is acceptable, but the
  // majority must be retrieved.
  EXPECT_GT(static_cast<int64_t>(crawl->ids.size()), 40);
}

TEST(CrawlerTest, BudgetYieldsIncomplete) {
  dataset::SyntheticOptions o;
  o.num_tuples = 1000;
  o.num_attributes = 3;
  o.domain_size = 100;
  o.seed = 94;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  CrawlOptions opts;
  opts.common.max_queries = 20;
  auto crawl = CrawlDatabase(iface.get(), opts);
  ASSERT_TRUE(crawl.ok());
  EXPECT_FALSE(crawl->complete);
  EXPECT_LE(crawl->query_cost, 20);
  EXPECT_GT(crawl->ids.size(), 0u);
}

TEST(BaselineTest, SkylineMatchesGroundTruth) {
  dataset::SyntheticOptions o;
  o.num_tuples = 1200;
  o.num_attributes = 3;
  o.domain_size = 150;
  o.seed = 95;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 10);
  auto result = BaselineSkyline(iface.get());
  ASSERT_TRUE(result.ok());
  ExpectExactSkyline(*result, t);
  // BASELINE costs far more than direct discovery.
  auto iface2 = MakeInterface(&t, MakeSumRanking(), 10);
  auto direct = RqDbSky(iface2.get());
  ASSERT_TRUE(direct.ok());
  EXPECT_GT(result->query_cost, direct->query_cost);
}

TEST(BaselineTest, TraceIsPostHocMonotone) {
  dataset::SyntheticOptions o;
  o.num_tuples = 500;
  o.num_attributes = 2;
  o.domain_size = 80;
  o.seed = 96;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  auto result = BaselineSkyline(iface.get());
  ASSERT_TRUE(result.ok());
  testutil::ExpectWellFormedTrace(*result);
}

// ---------------------------------------------------------------------
// MQ-DB-SKY

struct MixedParam {
  std::vector<InterfaceType> ifaces;
  std::vector<data::Value> domains;
  int64_t n;
  int k;
  uint64_t seed;
};

class MqCorrectness : public ::testing::TestWithParam<MixedParam> {};

TEST_P(MqCorrectness, DiscoversExactSkyline) {
  const MixedParam& p = GetParam();
  const Table t = MakeMixed(p.ifaces, p.domains, p.n, p.seed);
  auto iface = MakeInterface(&t, MakeSumRanking(), p.k);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

const InterfaceType RQ = InterfaceType::kRQ;
const InterfaceType SQ = InterfaceType::kSQ;
const InterfaceType PQ = InterfaceType::kPQ;

INSTANTIATE_TEST_SUITE_P(
    Sweep, MqCorrectness,
    ::testing::Values(
        // Pure cases dispatch to the specialized algorithms.
        MixedParam{{RQ, RQ, RQ}, {100, 100, 100}, 500, 1, 101},
        MixedParam{{SQ, SQ, SQ}, {100, 100, 100}, 500, 1, 102},
        MixedParam{{PQ, PQ, PQ}, {10, 10, 10}, 400, 1, 103},
        // Mixed one-/two-ended ranges (no point attributes).
        MixedParam{{RQ, SQ, RQ}, {80, 80, 80}, 500, 1, 104},
        MixedParam{{SQ, RQ}, {60, 60}, 300, 5, 105},
        // Range + point mixtures: the interesting cases.
        MixedParam{{RQ, RQ, PQ}, {100, 100, 8}, 500, 1, 106},
        MixedParam{{RQ, RQ, PQ, PQ}, {80, 80, 6, 6}, 500, 1, 107},
        MixedParam{{RQ, PQ, PQ}, {100, 8, 8}, 400, 5, 108},
        MixedParam{{SQ, PQ}, {60, 8}, 300, 1, 109},
        MixedParam{{SQ, SQ, PQ}, {60, 60, 6}, 400, 1, 110},
        MixedParam{{RQ, SQ, PQ}, {80, 80, 6}, 400, 1, 111},
        MixedParam{{RQ, SQ, PQ, PQ}, {60, 60, 5, 5}, 300, 10, 112},
        // Small domains force heavy duplication.
        MixedParam{{RQ, PQ}, {5, 3}, 300, 5, 113},
        // Tiny databases.
        MixedParam{{RQ, PQ}, {50, 5}, 3, 1, 114},
        MixedParam{{RQ, PQ}, {50, 5}, 0, 1, 115}));

TEST(MqTest, RandomRankingMixed) {
  const Table t =
      MakeMixed({RQ, RQ, PQ}, {60, 60, 8}, 400, 116);
  auto iface = MakeInterface(&t, MakeLayeredRandomRanking(9), 1);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

TEST(MqTest, PhaseTwoFindsRangeDominatedTuples) {
  // Hand-built instance: u is dominated on the range attribute but beats
  // everything on the point attribute, so phase 1 alone must miss it.
  auto schema = std::move(Schema::Create(
      {{"r", AttributeKind::kRanking, RQ, 0, 100},
       {"p", AttributeKind::kRanking, PQ, 0, 5}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({10, 3}).ok());  // range-best
  ASSERT_TRUE(t.Append({50, 0}).ok());  // u: range-dominated, point-best
  ASSERT_TRUE(t.Append({60, 4}).ok());  // dominated by both
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
  ASSERT_EQ(result->skyline.size(), 2u);
  // Phase 1 alone (RQ over the range attribute) misses u.
  auto iface2 = MakeInterface(&t, MakeSumRanking(), 1);
  RqDbSkyOptions rq;
  rq.branch_attrs = {0};
  auto phase1 = RqDbSky(iface2.get(), rq);
  ASSERT_TRUE(phase1.ok());
  EXPECT_EQ(phase1->skyline.size(), 1u);
}

TEST(MqTest, FilteringAttributesHaveNoImplication) {
  // Section 2.1: filtering attributes do not affect skyline discovery.
  const Table with_filter =
      MakeMixed({RQ, RQ, PQ}, {60, 60, 6}, 400, 117, /*num_filter=*/2);
  auto iface = MakeInterface(&with_filter, MakeSumRanking(), 2);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, with_filter);
}

TEST(MqTest, FilteredSubsetDiscovery) {
  // Section 2.3: discovery within a filtered subset only needs the
  // filter appended to every query; MQ must return exactly the
  // stratum's skyline.
  const Table t =
      MakeMixed({RQ, RQ, PQ}, {60, 60, 6}, 500, 120, /*num_filter=*/1);
  const int filter_attr = 3;
  auto iface = MakeInterface(&t, MakeSumRanking(), 2);
  MqDbSkyOptions opts;
  interface::Query filter(t.schema().num_attributes());
  filter.AddEquals(filter_attr, 2);
  opts.common.base_filter = filter;
  auto result = MqDbSky(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  const Table stratum = t.FilterRows(
      [&](data::TupleId r) { return t.value(r, filter_attr) == 2; });
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            skyline::DistinctSkylineValues(stratum));
  for (const data::Tuple& tup : result->skyline) {
    EXPECT_EQ(tup[static_cast<size_t>(filter_attr)], 2);
  }
}

TEST(MqTest, AnytimeBudget) {
  const Table t = MakeMixed({RQ, RQ, PQ, PQ}, {80, 80, 6, 6}, 600, 118);
  auto full_iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto full = MqDbSky(full_iface.get());
  ASSERT_TRUE(full.ok());
  for (int64_t budget : {2, 10, 40}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), 1, budget);
    auto partial = MqDbSky(iface.get());
    ASSERT_TRUE(partial.ok()) << partial.status();
    ExpectSoundSubset(*partial, t);
    if (budget < full->query_cost) {
      EXPECT_FALSE(partial->complete);
    }
  }
}

TEST(MqTest, TraceWellFormed) {
  const Table t = MakeMixed({RQ, RQ, PQ}, {60, 60, 8}, 400, 119);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok());
  testutil::ExpectWellFormedTrace(*result);
}

}  // namespace
}  // namespace core
}  // namespace hdsky
