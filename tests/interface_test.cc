// Unit and property tests for interface/: predicates, queries, interface
// legality enforcement, top-k semantics, ranking-policy
// domination-consistency, budgets, and the k-d index fast path.

#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/rq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/cache_io.h"
#include "interface/caching_database.h"
#include "interface/hidden_database.h"
#include "interface/kd_index.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "skyline/compute.h"
#include "skyline/dominance.h"

namespace hdsky {
namespace interface {
namespace {

using data::AttributeKind;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;
using data::TupleId;
using data::Value;

TEST(IntervalTest, DefaultUnconstrained) {
  Interval iv;
  EXPECT_FALSE(iv.constrained());
  EXPECT_TRUE(iv.Contains(0));
  EXPECT_TRUE(iv.Contains(data::kNullValue));
  EXPECT_EQ(iv.ToString(), "*");
}

TEST(IntervalTest, IntersectNarrows) {
  Interval iv;
  iv.Intersect(3, 10);
  iv.Intersect(Interval::kMin, 7);
  EXPECT_EQ(iv.lower, 3);
  EXPECT_EQ(iv.upper, 7);
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(8));
  iv.Intersect(9, Interval::kMax);
  EXPECT_TRUE(iv.empty());
}

TEST(IntervalTest, NullFailsAnyConstraint) {
  Interval iv;
  iv.Intersect(3, Interval::kMax);  // lower-only constraint
  EXPECT_FALSE(iv.Contains(data::kNullValue));
}

TEST(IntervalTest, PointToString) {
  Interval iv;
  iv.Intersect(4, 4);
  EXPECT_TRUE(iv.is_point());
  EXPECT_EQ(iv.ToString(), "=4");
}

TEST(QueryTest, PredicateBuilders) {
  Query q(2);
  q.AddLessThan(0, 10);     // A0 < 10 -> upper 9
  q.AddAtLeast(1, 3);       // A1 >= 3
  EXPECT_EQ(q.interval(0).upper, 9);
  EXPECT_EQ(q.interval(1).lower, 3);
  EXPECT_TRUE(q.MatchesTuple({9, 3}));
  EXPECT_FALSE(q.MatchesTuple({10, 3}));
  EXPECT_FALSE(q.MatchesTuple({9, 2}));
}

TEST(QueryTest, ConjunctiveIntersection) {
  Query q(1);
  q.AddAtMost(0, 10).AddGreaterThan(0, 4);  // (4, 10]
  EXPECT_FALSE(q.MatchesTuple({4}));
  EXPECT_TRUE(q.MatchesTuple({5}));
  EXPECT_TRUE(q.MatchesTuple({10}));
  q.AddEquals(0, 7);
  EXPECT_TRUE(q.interval(0).is_point());
  q.AddEquals(0, 9);  // contradictory equality
  EXPECT_TRUE(q.HasEmptyInterval());
}

Table MakeMixedTable() {
  // price (RQ), memory (SQ), stops (PQ), carrier (filtering)
  auto schema = Schema::Create(
      {{"price", AttributeKind::kRanking, InterfaceType::kRQ, 0, 1000},
       {"memory", AttributeKind::kRanking, InterfaceType::kSQ, 0, 64},
       {"stops", AttributeKind::kRanking, InterfaceType::kPQ, 0, 2},
       {"carrier", AttributeKind::kFiltering,
        InterfaceType::kFilterEquality, 0, 3}});
  Table t(std::move(schema).value());
  EXPECT_TRUE(t.Append({100, 8, 0, 1}).ok());
  EXPECT_TRUE(t.Append({200, 4, 1, 2}).ok());
  EXPECT_TRUE(t.Append({300, 2, 2, 1}).ok());
  EXPECT_TRUE(t.Append({150, 16, 0, 0}).ok());
  EXPECT_TRUE(t.Append({50, 32, 2, 3}).ok());
  return t;
}

TEST(TopKInterfaceTest, CreateValidation) {
  const Table t = MakeMixedTable();
  EXPECT_FALSE(
      TopKInterface::Create(nullptr, MakeSumRanking(), {}).ok());
  EXPECT_FALSE(TopKInterface::Create(&t, nullptr, {}).ok());
  TopKOptions bad;
  bad.k = 0;
  EXPECT_FALSE(TopKInterface::Create(&t, MakeSumRanking(), bad).ok());
}

TEST(TopKInterfaceTest, LegalityEnforcement) {
  const Table t = MakeMixedTable();
  auto iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();

  // RQ attribute: anything goes.
  Query rq(4);
  rq.AddAtLeast(0, 100).AddAtMost(0, 300);
  EXPECT_TRUE(iface->ValidateQuery(rq).ok());

  // SQ attribute: upper bound ok, equality ok, lower bound rejected.
  Query sq_upper(4);
  sq_upper.AddLessThan(1, 10);
  EXPECT_TRUE(iface->ValidateQuery(sq_upper).ok());
  Query sq_eq(4);
  sq_eq.AddEquals(1, 8);
  EXPECT_TRUE(iface->ValidateQuery(sq_eq).ok());
  Query sq_lower(4);
  sq_lower.AddAtLeast(1, 4);
  EXPECT_TRUE(iface->ValidateQuery(sq_lower).IsUnsupported());

  // PQ attribute: only points.
  Query pq_eq(4);
  pq_eq.AddEquals(2, 1);
  EXPECT_TRUE(iface->ValidateQuery(pq_eq).ok());
  Query pq_range(4);
  pq_range.AddLessThan(2, 2);
  EXPECT_TRUE(iface->ValidateQuery(pq_range).IsUnsupported());

  // Filtering attribute: only equality.
  Query f_eq(4);
  f_eq.AddEquals(3, 1);
  EXPECT_TRUE(iface->ValidateQuery(f_eq).ok());
  Query f_range(4);
  f_range.AddAtMost(3, 1);
  EXPECT_TRUE(iface->ValidateQuery(f_range).IsUnsupported());

  // Arity mismatch.
  EXPECT_TRUE(iface->ValidateQuery(Query(2)).IsInvalidArgument());

  // Rejected queries are not charged.
  auto r = iface->Execute(sq_lower);
  EXPECT_TRUE(r.status().IsUnsupported());
  EXPECT_EQ(iface->stats().queries_issued, 0);
  EXPECT_EQ(iface->stats().rejected_queries, 1);
}

TEST(TopKInterfaceTest, TopKOrderAndOverflow) {
  const Table t = MakeMixedTable();
  TopKOptions opts;
  opts.k = 2;
  // Rank by price only (lexicographic with priority {price}).
  auto iface = std::move(TopKInterface::Create(
                             &t, MakeLexicographicRanking({0}), opts))
                   .value();
  auto r = iface->Execute(Query(4));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2);
  EXPECT_TRUE(r->overflow);
  EXPECT_EQ(r->ids[0], 4);  // price 50
  EXPECT_EQ(r->ids[1], 0);  // price 100
  EXPECT_EQ(r->tuples[0][0], 50);

  // Narrow query that underflows.
  Query q(4);
  q.AddAtMost(0, 120);
  auto r2 = iface->Execute(q);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->size(), 2);
  EXPECT_FALSE(r2->overflow);  // exactly 2 matches

  Query q3(4);
  q3.AddAtMost(0, 60);
  auto r3 = iface->Execute(q3);
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3->size(), 1);
  EXPECT_FALSE(r3->overflow);

  Query q4(4);
  q4.AddAtMost(0, 10);
  auto r4 = iface->Execute(q4);
  ASSERT_TRUE(r4.ok());
  EXPECT_TRUE(r4->empty());
  EXPECT_EQ(iface->stats().empty_queries, 1);
  EXPECT_EQ(iface->stats().queries_issued, 4);
}

TEST(TopKInterfaceTest, FilteringPredicateWorks) {
  const Table t = MakeMixedTable();
  auto iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  Query q(4);
  q.AddEquals(3, 1);  // carrier = 1 -> rows 0 and 2
  auto r = iface->Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 1);  // k = 1
  EXPECT_TRUE(r->overflow);
  EXPECT_TRUE(r->ids[0] == 0 || r->ids[0] == 2);
}

TEST(TopKInterfaceTest, BudgetExhaustion) {
  const Table t = MakeMixedTable();
  TopKOptions opts;
  opts.query_budget = 2;
  auto iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), opts)).value();
  EXPECT_EQ(iface->RemainingBudget(), 2);
  EXPECT_TRUE(iface->Execute(Query(4)).ok());
  EXPECT_TRUE(iface->Execute(Query(4)).ok());
  EXPECT_EQ(iface->RemainingBudget(), 0);
  EXPECT_TRUE(iface->Execute(Query(4)).status().IsResourceExhausted());
  iface->SetBudget(1);
  EXPECT_TRUE(iface->Execute(Query(4)).ok());
  EXPECT_TRUE(iface->Execute(Query(4)).status().IsResourceExhausted());
  iface->SetBudget(0);  // unlimited
  EXPECT_EQ(iface->RemainingBudget(), -1);
  EXPECT_TRUE(iface->Execute(Query(4)).ok());
}

TEST(TopKInterfaceTest, DomainImpossibleQueriesAreCountedButEmpty) {
  const Table t = MakeMixedTable();
  auto iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  Query q(4);
  q.AddLessThan(0, 0);  // price < 0: below the domain
  auto r = iface->Execute(q);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(iface->stats().queries_issued, 1);
}

TEST(CachingDatabaseTest, ServesRepeatsFree) {
  const Table t = MakeMixedTable();
  TopKOptions opts;
  opts.k = 2;
  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), opts)).value();
  CachingDatabase cached(backend.get());
  Query q(4);
  q.AddAtMost(0, 200);
  auto first = cached.Execute(q);
  ASSERT_TRUE(first.ok());
  auto second = cached.Execute(q);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->ids, second->ids);
  EXPECT_EQ(first->overflow, second->overflow);
  EXPECT_EQ(backend->stats().queries_issued, 1);
  EXPECT_EQ(cached.hits(), 1);
  EXPECT_EQ(cached.misses(), 1);
}

TEST(CachingDatabaseTest, HitsIgnoreBackendBudget) {
  const Table t = MakeMixedTable();
  TopKOptions opts;
  opts.query_budget = 1;
  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), opts)).value();
  CachingDatabase cached(backend.get());
  ASSERT_TRUE(cached.Execute(Query(4)).ok());
  // Budget is gone, but the identical query replays from the cache...
  EXPECT_TRUE(cached.Execute(Query(4)).ok());
  // ...while a new query is refused by the backend.
  Query q(4);
  q.AddAtMost(0, 100);
  EXPECT_TRUE(cached.Execute(q).status().IsResourceExhausted());
}

TEST(CachingDatabaseTest, AccountsBackendErrorsSeparately) {
  // Audit of hit/miss accounting under error returns: a failed backend
  // fetch must count as neither a hit nor a miss (it is an error), must
  // cache nothing, and must leave a later retry able to reach the
  // backend. Invariant: hits + misses + errors == accepted Execute calls.
  const Table t = MakeMixedTable();
  TopKOptions opts;
  opts.query_budget = 1;
  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), opts)).value();
  CachingDatabase cached(backend.get());

  Query q(4);
  q.AddAtMost(0, 200);
  ASSERT_TRUE(cached.Execute(q).ok());  // consumes the whole budget
  EXPECT_EQ(cached.misses(), 1);

  Query q2(4);
  q2.AddAtMost(0, 100);
  // Three failed fetches: errors tally, hit/miss ratios stay honest,
  // and the failures are not cached as answers.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cached.Execute(q2).status().IsResourceExhausted());
  }
  EXPECT_EQ(cached.hits(), 0);
  EXPECT_EQ(cached.misses(), 1);
  EXPECT_EQ(cached.errors(), 3);
  EXPECT_EQ(cached.size(), 1);

  // A new budget window: the retry is a genuine miss that reaches the
  // backend (nothing stale was cached by the failures).
  backend->SetBudget(1);
  ASSERT_TRUE(cached.Execute(q2).ok());
  EXPECT_EQ(cached.misses(), 2);
  EXPECT_EQ(cached.errors(), 3);
  EXPECT_EQ(cached.size(), 2);

  // Rejected (illegal) queries fail validation before the cache and
  // count nowhere.
  Query bad(4);
  bad.AddAtLeast(1, 2);  // lower bound on an SQ attribute
  EXPECT_TRUE(cached.Execute(bad).status().IsUnsupported());
  EXPECT_EQ(cached.hits() + cached.misses() + cached.errors(), 5);
}

TEST(CachingDatabaseTest, MakesDiscoveryResumable) {
  // Re-running a deterministic discovery across budget windows costs, in
  // total, exactly the one-shot cost: the cached prefix replays free.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 600;
  gen.num_attributes = 3;
  gen.domain_size = 80;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 98;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();

  // One-shot reference.
  auto ref_iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  auto ref = hdsky::core::RqDbSky(ref_iface.get());
  ASSERT_TRUE(ref.ok());

  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  CachingDatabase cached(backend.get());
  const int64_t window = std::max<int64_t>(ref->query_cost / 5, 1);
  bool complete = false;
  for (int session = 0; session < 10 && !complete; ++session) {
    backend->SetBudget(window);
    auto partial = hdsky::core::RqDbSky(&cached);
    ASSERT_TRUE(partial.ok()) << partial.status();
    complete = partial->complete;
    if (complete) {
      EXPECT_EQ(partial->skyline_ids, ref->skyline_ids);
    }
  }
  EXPECT_TRUE(complete);
  // <= because the cache also collapses intra-run duplicate queries.
  EXPECT_LE(backend->stats().queries_issued, ref->query_cost);
}

TEST(CachingDatabaseTest, PersistsAcrossProcesses) {
  // Session 1 discovers under a budget and saves its cache; session 2
  // (a fresh decorator, as after a process restart) loads it, replays
  // for free, and finishes.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 400;
  gen.num_attributes = 3;
  gen.domain_size = 60;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 96;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  const std::string path = ::testing::TempDir() + "/hdsky_cache.txt";

  auto ref_iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  auto ref = hdsky::core::RqDbSky(ref_iface.get());
  ASSERT_TRUE(ref.ok());
  const int64_t half = std::max<int64_t>(ref->query_cost / 2, 1);

  int64_t first_session_queries = 0;
  {
    TopKOptions opts;
    opts.query_budget = half;
    auto backend =
        std::move(TopKInterface::Create(&t, MakeSumRanking(), opts))
            .value();
    CachingDatabase cached(backend.get());
    auto partial = hdsky::core::RqDbSky(&cached);
    ASSERT_TRUE(partial.ok());
    EXPECT_FALSE(partial->complete);
    first_session_queries = backend->stats().queries_issued;
    ASSERT_TRUE(cached.SaveToFile(path).ok());
  }
  {
    auto backend =
        std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
    CachingDatabase cached(backend.get());
    ASSERT_TRUE(cached.LoadFromFile(path).ok());
    EXPECT_EQ(cached.size(), first_session_queries);
    auto final = hdsky::core::RqDbSky(&cached);
    ASSERT_TRUE(final.ok());
    EXPECT_TRUE(final->complete);
    EXPECT_EQ(final->skyline_ids, ref->skyline_ids);
    // Only the remainder hits the backend — possibly less, because the
    // cache also makes intra-run duplicate queries free.
    EXPECT_LE(backend->stats().queries_issued,
              ref->query_cost - first_session_queries);
    EXPECT_GT(backend->stats().queries_issued, 0);
  }
  std::remove(path.c_str());
}

TEST(CachingDatabaseTest, LoadRejectsGarbage) {
  const Table t = MakeMixedTable();
  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  CachingDatabase cached(backend.get());
  std::istringstream garbage("not-a-cache 3");
  EXPECT_TRUE(cached.Load(garbage).IsIOError());
  EXPECT_TRUE(cached.LoadFromFile("/nonexistent/cache").IsIOError());
}

// --- hdsky-cache-v1 stream hardening -----------------------------------
//
// A cache file can be truncated by a crashed process or corrupted in
// transit. Load must reject such streams with a clear Status and leave
// the decorator exactly as it was — never a partially-applied cache.

/// A small populated cache, saved to text, for mutation-based tests.
std::string SavedCacheText(const Table& t) {
  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  CachingDatabase cached(backend.get());
  for (int i = 0; i < 4; ++i) {
    Query q(t.schema().num_attributes());
    q.AddAtMost(0, 100 + 50 * i);
    EXPECT_TRUE(cached.Execute(q).ok());
  }
  std::ostringstream out;
  EXPECT_TRUE(cached.Save(out).ok());
  return out.str();
}

/// Loading `text` must fail as IOError and leave `cached` untouched.
void ExpectAtomicRejection(const Table& t, const std::string& text,
                           const std::string& label) {
  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  CachingDatabase cached(backend.get());
  // Pre-populate one entry so "unchanged" is observable.
  Query q(t.schema().num_attributes());
  q.AddAtMost(0, 123);
  ASSERT_TRUE(cached.Execute(q).ok());
  const int64_t size_before = cached.size();

  std::istringstream in(text);
  const common::Status s = cached.Load(in);
  EXPECT_TRUE(s.IsIOError()) << label << ": " << s.ToString();
  EXPECT_EQ(cached.size(), size_before) << label;
  // The pre-existing entry still replays for free.
  ASSERT_TRUE(cached.Execute(q).ok());
  EXPECT_EQ(cached.hits(), 1) << label;
}

TEST(CacheIoTest, RoundTripsThroughText) {
  const Table t = MakeMixedTable();
  const std::string text = SavedCacheText(t);
  std::istringstream in(text);
  auto loaded = cache_io::ReadAll(in, t.schema().num_attributes());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 4u);
  // Re-serializing the loaded map yields a stream that loads again to
  // the same entry set (order in the map is free to differ).
  std::ostringstream out;
  cache_io::WriteHeader(out, loaded->size());
  for (const auto& [key, result] : *loaded) {
    cache_io::WriteEntry(out, key, result);
  }
  ASSERT_TRUE(cache_io::FinishWrite(out).ok());
  std::istringstream in2(out.str());
  auto reloaded = cache_io::ReadAll(in2, t.schema().num_attributes());
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->size(), loaded->size());
  for (const auto& [key, result] : *loaded) {
    auto it = reloaded->find(key);
    ASSERT_NE(it, reloaded->end());
    EXPECT_EQ(it->second.ids, result.ids);
    EXPECT_EQ(it->second.overflow, result.overflow);
  }
}

TEST(CacheIoTest, RejectsTruncatedStreamsAtomically) {
  const Table t = MakeMixedTable();
  const std::string text = SavedCacheText(t);
  // Dropping whole trailing tokens always leaves the stream short of its
  // declared entries/values. (A byte-level cut inside the *last* number
  // is undetectable in a text format — "12" truncated to "1" still
  // parses — which is exactly why the wire protocol is length-prefixed
  // binary instead.)
  std::vector<std::string> tokens;
  {
    std::istringstream in(text);
    std::string tok;
    while (in >> tok) tokens.push_back(tok);
  }
  ASSERT_GT(tokens.size(), 8u);
  for (size_t drop : {size_t{1}, size_t{3}, tokens.size() / 2,
                      tokens.size() - 2}) {
    std::string cut;
    for (size_t i = 0; i + drop < tokens.size(); ++i) {
      cut += tokens[i];
      cut += ' ';
    }
    ExpectAtomicRejection(t, cut,
                          "dropped last " + std::to_string(drop) +
                              " tokens");
  }
  // A cut inside the first entry's hex signature is caught too: the
  // prefix is either odd-length hex or the wrong width for the schema.
  const size_t first_entry = text.find('\n') + 1;
  ExpectAtomicRejection(t, text.substr(0, first_entry + 11),
                        "cut mid-signature");
}

TEST(CacheIoTest, RejectsCorruptedFields) {
  const Table t = MakeMixedTable();
  const std::string text = SavedCacheText(t);
  const int width = t.schema().num_attributes();

  // Count claims more entries than the stream holds.
  {
    std::string s = text;
    const size_t pos = s.find(" 4\n");
    ASSERT_NE(pos, std::string::npos);
    s.replace(pos, 3, " 9\n");
    ExpectAtomicRejection(t, s, "count too high");
  }
  // Trailing garbage after the declared entries.
  ExpectAtomicRejection(t, text + "stray trailing entry\n",
                        "trailing garbage");
  // Duplicate keys: entry list repeated with the count doubled.
  {
    const size_t body = text.find('\n') + 1;
    std::string s = "hdsky-cache-v1 8\n" + text.substr(body) +
                    text.substr(body);
    ExpectAtomicRejection(t, s, "duplicate keys");
  }
  // Signature length disagrees with the schema width.
  {
    std::istringstream in(text);
    EXPECT_TRUE(cache_io::ReadAll(in, width + 1).status().IsIOError());
  }
  // Non-hex signature, odd-length signature.
  ExpectAtomicRejection(
      t, "hdsky-cache-v1 1\nzz 0 0\n", "non-hex signature");
  ExpectAtomicRejection(
      t, "hdsky-cache-v1 1\nabc 0 0\n", "odd-length signature");
  // Overflow flag outside {0, 1}.
  {
    std::string s = text;
    const size_t nl = s.find('\n');
    ASSERT_NE(nl, std::string::npos);
    const size_t sp = s.find(' ', nl);  // after the first signature
    ASSERT_NE(sp, std::string::npos);
    s.replace(sp + 1, 1, "7");
    ExpectAtomicRejection(t, s, "bad overflow flag");
  }
  // A huge declared tuple count must fail fast (truncated read), not
  // attempt a matching allocation first.
  {
    const std::string sig(static_cast<size_t>(width) * 2 *
                              sizeof(data::Value) * 2,
                          'a');  // hex chars = 2x bytes
    ExpectAtomicRejection(
        t, "hdsky-cache-v1 1\n" + sig + " 0 123456789012\n",
        "tuple-count memory bomb");
    // Negative tuple id.
    ExpectAtomicRejection(
        t, "hdsky-cache-v1 1\n" + sig + " 0 1 -5 1 2 3 4\n",
        "negative tuple id");
  }
}

TEST(CallbackDatabaseTest, AdaptsExternalBackends) {
  // A CallbackDatabase stands in for a real website's HTTP client; here
  // the "site" is a simulator behind the lambda. Discovery through the
  // adapter must equal discovery against the simulator directly.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 400;
  gen.num_attributes = 3;
  gen.domain_size = 50;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 97;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();

  auto backend =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  CallbackDatabase adapter(
      t.schema(), backend->k(),
      [&](const Query& q) { return backend->Execute(q); });

  auto via_adapter = hdsky::core::RqDbSky(&adapter);
  ASSERT_TRUE(via_adapter.ok()) << via_adapter.status();

  auto direct_iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), {})).value();
  auto direct = hdsky::core::RqDbSky(direct_iface.get());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_adapter->skyline_ids, direct->skyline_ids);
  EXPECT_EQ(via_adapter->query_cost, direct->query_cost);
}

TEST(CallbackDatabaseTest, ValidatesTaxonomyBeforeCalling) {
  const Table t = MakeMixedTable();
  int calls = 0;
  CallbackDatabase adapter(t.schema(), 1, [&](const Query&) {
    ++calls;
    return common::Result<QueryResult>(QueryResult{});
  });
  Query illegal(4);
  illegal.AddAtLeast(1, 4);  // lower bound on the SQ attribute
  EXPECT_TRUE(adapter.Execute(illegal).status().IsUnsupported());
  EXPECT_EQ(calls, 0);  // rejected before reaching the backend
  EXPECT_TRUE(adapter.Execute(Query(4)).ok());
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------
// Ranking policies: domination-consistency is THE requirement (§2.1).

struct RankingCase {
  std::string name;
  std::function<std::shared_ptr<RankingPolicy>()> make;
};

class RankingConsistency
    : public ::testing::TestWithParam<RankingCase> {};

TEST_P(RankingConsistency, TopKAnswersAreDominationConsistent) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 400;
  gen.num_attributes = 3;
  gen.domain_size = 12;  // small domain: plenty of dominance pairs
  gen.seed = 99;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  TopKOptions opts;
  opts.k = 25;
  auto iface =
      std::move(TopKInterface::Create(&t, GetParam().make(), opts))
          .value();
  const auto& ranking = t.schema().ranking_attributes();

  common::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    Query q(t.schema().num_attributes());
    // Random conjunctive box.
    for (int a = 0; a < 3; ++a) {
      if (rng.Bernoulli(0.5)) {
        q.AddAtMost(a, rng.UniformInt(3, 11));
      }
    }
    auto r = iface->Execute(q);
    ASSERT_TRUE(r.ok());
    // (1) Within the answer, no later tuple dominates an earlier one.
    for (int i = 0; i < r->size(); ++i) {
      for (int j = i + 1; j < r->size(); ++j) {
        EXPECT_FALSE(skyline::Dominates(r->tuples[static_cast<size_t>(j)],
                                        r->tuples[static_cast<size_t>(i)],
                                        ranking))
            << GetParam().name << " trial " << trial;
      }
    }
    // (2) No unreturned matching tuple dominates a returned one.
    std::set<TupleId> returned(r->ids.begin(), r->ids.end());
    for (TupleId row = 0; row < t.num_rows(); ++row) {
      if (returned.count(row) || !q.MatchesRow(t, row)) continue;
      for (int i = 0; i < r->size(); ++i) {
        EXPECT_FALSE(skyline::RowDominates(
            t, row, r->ids[static_cast<size_t>(i)], ranking))
            << GetParam().name << " trial " << trial;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, RankingConsistency,
    ::testing::Values(
        RankingCase{"sum", [] { return MakeSumRanking(); }},
        RankingCase{"weighted",
                    [] {
                      return MakeLinearRanking({0.2, 1.5, 3.0});
                    }},
        RankingCase{"lexicographic",
                    [] { return MakeLexicographicRanking({1, 0}); }},
        RankingCase{"layered_random",
                    [] { return MakeLayeredRandomRanking(77); }},
        RankingCase{"adversarial",
                    [] { return MakeAdversarialRanking(78); }}),
    [](const ::testing::TestParamInfo<RankingCase>& info) {
      return info.param.name;
    });

TEST(RankingTest, LinearRejectsNonPositiveWeights) {
  const Table t = MakeMixedTable();
  EXPECT_FALSE(
      TopKInterface::Create(&t, MakeLinearRanking({1.0, 0.0, 1.0}), {})
          .ok());
  EXPECT_FALSE(
      TopKInterface::Create(&t, MakeLinearRanking({1.0, -2.0, 1.0}), {})
          .ok());
}

TEST(RankingTest, LinearRejectsWrongArity) {
  const Table t = MakeMixedTable();  // 3 ranking attributes
  EXPECT_FALSE(
      TopKInterface::Create(&t, MakeLinearRanking({1.0, 1.0}), {}).ok());
}

TEST(RankingTest, LexicographicRejectsNonRankingPriority) {
  const Table t = MakeMixedTable();
  EXPECT_FALSE(
      TopKInterface::Create(&t, MakeLexicographicRanking({3}), {}).ok());
}

TEST(RankingTest, LayeredRandomIsDeterministicPerSeed) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 100;
  gen.num_attributes = 2;
  gen.domain_size = 20;
  gen.seed = 1;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  auto a = std::move(TopKInterface::Create(
                         &t, MakeLayeredRandomRanking(5), {}))
               .value();
  auto b = std::move(TopKInterface::Create(
                         &t, MakeLayeredRandomRanking(5), {}))
               .value();
  for (int i = 0; i < 5; ++i) {
    auto ra = a->Execute(Query(2));
    auto rb = b->Execute(Query(2));
    ASSERT_TRUE(ra.ok());
    ASSERT_TRUE(rb.ok());
    EXPECT_EQ(ra->ids, rb->ids);
  }
}

TEST(RankingTest, LayeredRandomTop1IsUniformOverMatchingSkyline) {
  // The §3.2 average-case model: over seeds, the top-1 of SELECT *
  // should be (approximately) uniform over the skyline.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 60;
  gen.num_attributes = 2;
  gen.domain_size = 15;
  gen.seed = 4;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  const auto sky = skyline::SkylineBNL(t);
  ASSERT_GE(sky.size(), 2u);
  std::map<TupleId, int> hits;
  const int trials = 400;
  for (int s = 0; s < trials; ++s) {
    auto iface = std::move(TopKInterface::Create(
                               &t, MakeLayeredRandomRanking(1000 + s), {}))
                     .value();
    auto r = iface->Execute(Query(2));
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 1);
    ++hits[r->ids[0]];
  }
  // Every top-1 is a skyline tuple, and each skyline tuple is hit.
  std::set<TupleId> sky_set(sky.begin(), sky.end());
  for (const auto& [id, count] : hits) {
    EXPECT_TRUE(sky_set.count(id)) << id;
  }
  EXPECT_EQ(hits.size(), sky.size());
}

// ---------------------------------------------------------------------
// KdIndex

TEST(KdIndexTest, MatchesBruteForceOnRandomQueries) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 3000;
  gen.num_attributes = 4;
  gen.domain_size = 64;
  gen.seed = 12;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  std::vector<int64_t> rank(static_cast<size_t>(t.num_rows()));
  std::iota(rank.begin(), rank.end(), 0);
  KdIndex index(&t, rank);

  common::Rng rng(13);
  for (int trial = 0; trial < 40; ++trial) {
    Query q(4);
    for (int a = 0; a < 4; ++a) {
      const int mode = static_cast<int>(rng.UniformInt(0, 3));
      if (mode == 1) {
        q.AddAtMost(a, rng.UniformInt(0, 63));
      } else if (mode == 2) {
        q.AddAtLeast(a, rng.UniformInt(0, 63));
      } else if (mode == 3) {
        q.AddEquals(a, rng.UniformInt(0, 63));
      }
    }
    std::vector<TupleId> got;
    ASSERT_TRUE(
        index.RetrieveMatches(q, t.num_rows() + 1, &got));
    std::sort(got.begin(), got.end());
    std::vector<TupleId> expected;
    for (TupleId r = 0; r < t.num_rows(); ++r) {
      if (q.MatchesRow(t, r)) expected.push_back(r);
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(KdIndexTest, AbortsAboveThreshold) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 2000;
  gen.num_attributes = 2;
  gen.domain_size = 100;
  gen.seed = 14;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  std::vector<int64_t> rank(static_cast<size_t>(t.num_rows()));
  std::iota(rank.begin(), rank.end(), 0);
  KdIndex index(&t, rank);
  std::vector<TupleId> got;
  EXPECT_FALSE(index.RetrieveMatches(Query(2), 10, &got));
  EXPECT_GT(got.size(), 10u);
}

TEST(KdIndexTest, IndexedInterfaceAgreesWithScan) {
  // Above the indexing threshold the interface must answer identically.
  dataset::SyntheticOptions gen;
  gen.num_tuples = 6000;  // >= threshold, index built
  gen.num_attributes = 3;
  gen.domain_size = 40;
  gen.seed = 15;
  const Table t = std::move(dataset::GenerateSynthetic(gen)).value();
  TopKOptions opts;
  opts.k = 7;
  auto iface =
      std::move(TopKInterface::Create(&t, MakeSumRanking(), opts)).value();
  common::Rng rng(16);
  for (int trial = 0; trial < 30; ++trial) {
    Query q(3);
    for (int a = 0; a < 3; ++a) {
      if (rng.Bernoulli(0.6)) q.AddAtMost(a, rng.UniformInt(0, 12));
    }
    auto r = iface->Execute(q);
    ASSERT_TRUE(r.ok());
    // Brute-force reference.
    std::vector<TupleId> matches;
    for (TupleId row = 0; row < t.num_rows(); ++row) {
      if (q.MatchesRow(t, row)) matches.push_back(row);
    }
    LinearRanking ref;
    ASSERT_TRUE(ref.Bind(&t, t.schema().ranking_attributes()).ok());
    const auto expected = ref.SelectTopK(matches, opts.k);
    EXPECT_EQ(r->ids, expected) << "trial " << trial;
    EXPECT_EQ(r->overflow,
              static_cast<int>(matches.size()) > opts.k);
  }
}

}  // namespace
}  // namespace interface
}  // namespace hdsky
