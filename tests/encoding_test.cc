// Property and adversarial tests for the format-v2 run encodings
// (data/encoding.h): round trips over extreme and degenerate inputs,
// forced-encoding behavior, the auto pick's no-regression guarantee,
// and rejection of structurally corrupt encoded streams.

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "data/encoding.h"
#include "data/value.h"

namespace hdsky {
namespace data {
namespace {

std::vector<Value> Decode(const std::vector<uint8_t>& buf, size_t n) {
  std::vector<Value> out(n, Value{-12345});
  size_t consumed = 0;
  common::Status s = DecodeRun(buf.data(), buf.size(), n, out.data(),
                               &consumed);
  EXPECT_TRUE(s.ok()) << s;
  EXPECT_EQ(consumed, buf.size());
  return out;
}

void ExpectRoundTrip(const std::vector<Value>& values) {
  std::vector<uint8_t> buf;
  const size_t written = EncodeRun(values.data(), values.size(), &buf);
  ASSERT_EQ(written, buf.size());
  ASSERT_LE(written, MaxEncodedRunBytes(values.size()));
  EXPECT_EQ(Decode(buf, values.size()), values);
}

TEST(EncodingTest, RoundTripExtremeValues) {
  ExpectRoundTrip({std::numeric_limits<Value>::min(),
                   std::numeric_limits<Value>::max(), 0, -1, 1,
                   kNullValue, -kNullValue});
  ExpectRoundTrip({std::numeric_limits<Value>::min()});
  ExpectRoundTrip({std::numeric_limits<Value>::max()});
  ExpectRoundTrip({kNullValue, kNullValue, kNullValue});
}

TEST(EncodingTest, RoundTripNegativeRuns) {
  ExpectRoundTrip({-5, -4, -3, -2, -1});
  ExpectRoundTrip({-1000000000000LL, -999999999999LL, -1, -1000});
}

TEST(EncodingTest, ConstantRunEncodesTiny) {
  const std::vector<Value> values(1000, Value{42});
  std::vector<uint8_t> buf;
  const size_t written = EncodeRun(values.data(), values.size(), &buf);
  // FOR with width 0: header + base, no packed body.
  EXPECT_EQ(written, kRunHeaderBytes + sizeof(Value));
  EXPECT_EQ(Decode(buf, values.size()), values);
}

TEST(EncodingTest, SingleElementAndEmptyRuns) {
  ExpectRoundTrip({Value{7}});
  ExpectRoundTrip({});
}

TEST(EncodingTest, SortedRunsCompressWell) {
  std::vector<Value> sorted;
  for (Value v = 0; v < 4096; ++v) sorted.push_back(v * 3);
  std::vector<uint8_t> buf;
  const size_t written = EncodeRun(sorted.data(), sorted.size(), &buf);
  EXPECT_LT(written, sorted.size() * sizeof(Value) / 4);
  EXPECT_EQ(Decode(buf, sorted.size()), sorted);
}

TEST(EncodingTest, EveryForcedEncodingRoundTrips) {
  // Low-cardinality, wide-range, locally sorted: every encoding applies.
  std::vector<Value> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back((i / 100) * 1000000007LL);
  }
  for (const Encoding enc :
       {Encoding::kRaw, Encoding::kFor, Encoding::kDelta, Encoding::kDict}) {
    std::vector<uint8_t> buf;
    const size_t written =
        EncodeRunAs(enc, values.data(), values.size(), &buf);
    ASSERT_GT(written, 0u) << static_cast<int>(enc);
    EXPECT_EQ(PeekRunEncoding(buf.data()), enc);
    EXPECT_EQ(Decode(buf, values.size()), values);
  }
}

TEST(EncodingTest, FullRangeRunsFallBackToRaw) {
  // min..max spans 2^64 - 1: a frame-of-reference width would need 64
  // bits, so FOR must refuse. Delta still applies — the differences
  // wrap mod 2^64 to ±1, whose zigzag packs in one bit — and the auto
  // pick must round-trip regardless of which representation wins.
  const std::vector<Value> values = {std::numeric_limits<Value>::min(),
                                     std::numeric_limits<Value>::max(),
                                     std::numeric_limits<Value>::min()};
  std::vector<uint8_t> buf;
  EXPECT_EQ(EncodeRunAs(Encoding::kFor, values.data(), values.size(), &buf),
            0u);
  EXPECT_TRUE(buf.empty());
  ExpectRoundTrip(values);

  // A single step of exactly INT64_MIN zigzags to a 64-bit value, the
  // one magnitude delta cannot pack; it must refuse and the run still
  // round-trips via another encoding.
  const std::vector<Value> steep = {0, std::numeric_limits<Value>::min()};
  EXPECT_EQ(EncodeRunAs(Encoding::kDelta, steep.data(), steep.size(), &buf),
            0u);
  EXPECT_TRUE(buf.empty());
  ExpectRoundTrip(steep);
}

TEST(EncodingTest, DictRefusesAboveCardinalityCap) {
  std::vector<Value> values;
  for (Value v = 0; v < 5000; ++v) values.push_back(v * v);
  std::vector<uint8_t> buf;
  EXPECT_EQ(EncodeRunAs(Encoding::kDict, values.data(), values.size(), &buf),
            0u);
  ExpectRoundTrip(values);
}

TEST(EncodingTest, AutoPickNeverBeatenByForcedEncoding) {
  std::mt19937_64 rng(2024);
  std::vector<Value> values;
  for (int trial = 0; trial < 50; ++trial) {
    values.clear();
    const int n = 1 + static_cast<int>(rng() % 2000);
    const int mode = trial % 4;
    Value acc = static_cast<Value>(rng());
    for (int i = 0; i < n; ++i) {
      switch (mode) {
        case 0: values.push_back(static_cast<Value>(rng())); break;
        case 1: values.push_back(static_cast<Value>(rng() % 16)); break;
        case 2: acc += static_cast<Value>(rng() % 100); values.push_back(acc); break;
        default: values.push_back(Value{123456}); break;
      }
    }
    std::vector<uint8_t> amt;
    const size_t autop = EncodeRun(values.data(), values.size(), &amt);
    for (const Encoding enc : {Encoding::kRaw, Encoding::kFor,
                               Encoding::kDelta, Encoding::kDict}) {
      std::vector<uint8_t> forced;
      const size_t w =
          EncodeRunAs(enc, values.data(), values.size(), &forced);
      if (w > 0) {
        EXPECT_LE(autop, w) << "trial " << trial;
      }
    }
    EXPECT_EQ(Decode(amt, values.size()), values) << "trial " << trial;
  }
}

TEST(EncodingTest, PropertyFuzzRoundTrip) {
  std::mt19937_64 rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<Value> values;
    const int n = static_cast<int>(rng() % 300);
    const int shift = static_cast<int>(rng() % 64);
    for (int i = 0; i < n; ++i) {
      values.push_back(static_cast<Value>(rng() >> shift));
    }
    ExpectRoundTrip(values);
  }
}

// ---------------------------------------------------------------------------
// Corrupt stream rejection: every structural mutation must fail with a
// Status, never read out of bounds or return success.

std::vector<uint8_t> EncodeSample(Encoding enc, size_t* n_out) {
  std::vector<Value> values;
  for (int i = 0; i < 200; ++i) values.push_back((i % 10) * 1000);
  std::vector<uint8_t> buf;
  EXPECT_GT(EncodeRunAs(enc, values.data(), values.size(), &buf), 0u);
  *n_out = values.size();
  return buf;
}

void ExpectDecodeFails(const std::vector<uint8_t>& buf, size_t n) {
  std::vector<Value> out(n);
  size_t consumed = 0;
  EXPECT_FALSE(
      DecodeRun(buf.data(), buf.size(), n, out.data(), &consumed).ok());
}

TEST(EncodingTest, RejectsUnknownEncodingTag) {
  size_t n = 0;
  std::vector<uint8_t> buf = EncodeSample(Encoding::kFor, &n);
  buf[0] = 9;
  ExpectDecodeFails(buf, n);
}

TEST(EncodingTest, RejectsOverwideBitWidth) {
  size_t n = 0;
  std::vector<uint8_t> buf = EncodeSample(Encoding::kFor, &n);
  buf[1] = 64;
  ExpectDecodeFails(buf, n);
}

TEST(EncodingTest, RejectsNonZeroReservedBytes) {
  size_t n = 0;
  std::vector<uint8_t> buf = EncodeSample(Encoding::kDict, &n);
  buf[2] = 1;
  ExpectDecodeFails(buf, n);
}

TEST(EncodingTest, RejectsTruncatedBody) {
  for (const Encoding enc : {Encoding::kRaw, Encoding::kFor,
                             Encoding::kDelta, Encoding::kDict}) {
    size_t n = 0;
    std::vector<uint8_t> buf = EncodeSample(enc, &n);
    buf.resize(buf.size() - 1);
    ExpectDecodeFails(buf, n);
  }
}

TEST(EncodingTest, RejectsBodyLengthMismatch) {
  size_t n = 0;
  std::vector<uint8_t> buf = EncodeSample(Encoding::kFor, &n);
  // body_bytes is the u32 at offset 4; shrinking it desynchronizes the
  // declared body from the width/count arithmetic.
  buf[4] = static_cast<uint8_t>(buf[4] ^ 0x01);
  ExpectDecodeFails(buf, n);
}

TEST(EncodingTest, RejectsWrongValueCount) {
  // Bit-packing is word-granular, so an off-by-one count can land in
  // the same number of packed words and be structurally undetectable.
  // Probe raw (byte-exact per value, so ±1 must fail) and a packed
  // encoding with counts far enough off to change the word count.
  size_t n = 0;
  std::vector<uint8_t> raw = EncodeSample(Encoding::kRaw, &n);
  ExpectDecodeFails(raw, n + 1);
  ExpectDecodeFails(raw, n - 1);
  std::vector<uint8_t> packed = EncodeSample(Encoding::kFor, &n);
  ExpectDecodeFails(packed, n * 2);
  ExpectDecodeFails(packed, n / 2);
}

TEST(EncodingTest, RejectsDictIndexOutOfRange) {
  // Hand-build a dictionary run whose packed indexes point past the
  // dictionary: 2 values, dict_n = 2 (width 1), index stream = 0b11..,
  // then shrink dict_n to 1 while leaving width at 1.
  std::vector<Value> values = {10, 20, 10, 20};
  std::vector<uint8_t> buf;
  ASSERT_GT(EncodeRunAs(Encoding::kDict, values.data(), values.size(), &buf),
            0u);
  // Body layout: u64 dict_n | dict values | packed indexes.
  // Overwrite a dictionary index word so an index exceeds dict_n.
  // Forcing dict_n down by patching the low byte (2 -> 1) makes every
  // packed "1" index out of range; the decoder must notice.
  ASSERT_EQ(buf[kRunHeaderBytes], 2);
  buf[kRunHeaderBytes] = 1;
  // Fix body_bytes? No: leave it — either the length check or the
  // index-range check must reject, and neither may crash.
  ExpectDecodeFails(buf, values.size());
}

TEST(EncodingTest, RejectsShortBuffer) {
  std::vector<uint8_t> tiny = {0, 0, 0};
  ExpectDecodeFails(tiny, 1);
}

}  // namespace
}  // namespace data
}  // namespace hdsky
