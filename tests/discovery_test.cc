// Unit tests for the core/discovery.h layer (SkylineCollector,
// DiscoveryRun) and for the algorithm options added on top of the paper
// (duplicate-node skipping, impossible-child pruning): behaviours not
// already pinned down by the end-to-end algorithm suites.

#include <gtest/gtest.h>

#include "core/discovery.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::Tuple;
using interface::MakeSumRanking;
using interface::Query;
using testutil::ExpectExactSkyline;
using testutil::MakeInterface;

TEST(SkylineCollectorTest, ObserveConfirmsUndominated) {
  SkylineCollector c({0, 1});
  EXPECT_TRUE(c.Observe(1, {5, 5}));
  EXPECT_TRUE(c.Observe(2, {3, 8}));   // incomparable
  EXPECT_FALSE(c.Observe(3, {6, 6}));  // dominated by (5,5)
  EXPECT_EQ(c.size(), 2);
}

TEST(SkylineCollectorTest, ObserveMemoizesIds) {
  SkylineCollector c({0, 1});
  EXPECT_TRUE(c.Observe(1, {5, 5}));
  // Same id again: already classified, not a new confirmation.
  EXPECT_FALSE(c.Observe(1, {5, 5}));
  EXPECT_EQ(c.size(), 1);
}

TEST(SkylineCollectorTest, ValueDuplicatesIgnored) {
  SkylineCollector c({0, 1});
  EXPECT_TRUE(c.Observe(1, {5, 5}));
  EXPECT_FALSE(c.Observe(2, {5, 5}));  // equal values, different id
  EXPECT_EQ(c.size(), 1);
}

TEST(SkylineCollectorTest, AddConfirmedBypassesDominance) {
  SkylineCollector c({0, 1});
  c.AddConfirmed(1, {5, 5});
  // Geometric proofs are trusted even if a collected tuple dominates.
  EXPECT_TRUE(c.AddConfirmed(2, {6, 6}));
  EXPECT_EQ(c.size(), 2);
  EXPECT_FALSE(c.AddConfirmed(2, {6, 6}));  // id dedup still applies
}

TEST(SkylineCollectorTest, DominationQueries) {
  SkylineCollector c({0, 1});
  c.AddConfirmed(1, {5, 5});
  EXPECT_TRUE(c.IsDominated({6, 6}));
  EXPECT_FALSE(c.IsDominated({5, 5}));
  EXPECT_TRUE(c.IsDominatedOrDuplicate({5, 5}));
  EXPECT_FALSE(c.IsDominatedOrDuplicate({4, 9}));
}

TEST(QuerySignatureTest, EqualIffSamePredicates) {
  Query a(3), b(3);
  a.AddAtMost(0, 5).AddAtLeast(2, 1);
  b.AddAtLeast(2, 1).AddAtMost(0, 5);  // order-insensitive
  EXPECT_EQ(a.Signature(), b.Signature());
  b.AddAtMost(1, 9);
  EXPECT_NE(a.Signature(), b.Signature());
  // Different bounds differ.
  Query c(3), d(3);
  c.AddAtMost(0, 5);
  d.AddAtMost(0, 6);
  EXPECT_NE(c.Signature(), d.Signature());
}

TEST(DiscoveryRunTest, MaxQueriesStopsExecution) {
  dataset::SyntheticOptions o;
  o.num_tuples = 100;
  o.num_attributes = 2;
  o.seed = 5;
  const data::Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  DiscoveryOptions opts;
  opts.max_queries = 2;
  DiscoveryRun run(iface.get(), opts);
  EXPECT_TRUE(run.Execute(run.MakeBaseQuery()).ok());
  EXPECT_TRUE(run.Execute(run.MakeBaseQuery()).ok());
  auto third = run.Execute(run.MakeBaseQuery());
  EXPECT_TRUE(third.status().IsResourceExhausted());
  EXPECT_TRUE(run.exhausted());
  EXPECT_EQ(run.queries_issued(), 2);
  const DiscoveryResult result = run.Finish();
  EXPECT_FALSE(result.complete);
}

TEST(DiscoveryRunTest, FinishReportsSortedIdsAndTrace) {
  dataset::SyntheticOptions o;
  o.num_tuples = 50;
  o.num_attributes = 2;
  o.seed = 6;
  const data::Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  DiscoveryOptions opts;
  DiscoveryRun run(iface.get(), opts);
  run.AddConfirmed(9, t.GetTuple(9));
  run.AddConfirmed(3, t.GetTuple(3));
  const DiscoveryResult result = run.Finish();
  EXPECT_EQ(result.skyline_ids, (std::vector<data::TupleId>{3, 9}));
  EXPECT_EQ(result.skyline[0], t.GetTuple(3));
  testutil::ExpectWellFormedTrace(result);
}

TEST(DuplicateNodeSkipTest, SameResultFewerOrEqualQueries) {
  dataset::SyntheticOptions o;
  o.num_tuples = 500;
  o.num_attributes = 3;
  o.domain_size = 8;  // tiny domain: duplicate regions are common
  o.iface = data::InterfaceType::kRQ;
  o.seed = 7;
  const data::Table t = std::move(dataset::GenerateSynthetic(o)).value();

  auto iface_a = MakeInterface(&t, MakeSumRanking(), 1);
  SqDbSkyOptions plain;
  auto base = SqDbSky(iface_a.get(), plain);
  ASSERT_TRUE(base.ok());
  ExpectExactSkyline(*base, t);

  auto iface_b = MakeInterface(&t, MakeSumRanking(), 1);
  SqDbSkyOptions dedup;
  dedup.skip_duplicate_nodes = true;
  auto skipped = SqDbSky(iface_b.get(), dedup);
  ASSERT_TRUE(skipped.ok());
  ExpectExactSkyline(*skipped, t);
  EXPECT_LE(skipped->query_cost, base->query_cost);

  auto iface_c = MakeInterface(&t, MakeSumRanking(), 1);
  RqDbSkyOptions rq_dedup;
  rq_dedup.skip_duplicate_nodes = true;
  auto rq = RqDbSky(iface_c.get(), rq_dedup);
  ASSERT_TRUE(rq.ok());
  ExpectExactSkyline(*rq, t);
}

TEST(ImpossibleChildTest, IssuingThemMatchesCostModelAccounting) {
  // With pruning off, a single-tuple database costs exactly 1 + m
  // queries (the paper's C_1 = m + 1); with pruning on, just 1.
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kSQ, 0,
        9},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kSQ, 0,
        9},
       {"c", data::AttributeKind::kRanking, data::InterfaceType::kSQ, 0,
        9}})).value();
  data::Table t(std::move(schema));
  ASSERT_TRUE(t.Append({0, 0, 0}).ok());  // best corner: all children
                                          // are domain-impossible
  {
    auto iface = MakeInterface(&t, MakeSumRanking(), 1);
    SqDbSkyOptions opts;
    opts.skip_impossible_children = false;
    auto r = SqDbSky(iface.get(), opts);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->query_cost, 4);  // 1 root + m = 3 empty branches
  }
  {
    auto iface = MakeInterface(&t, MakeSumRanking(), 1);
    auto r = SqDbSky(iface.get());  // default: pruning on
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->query_cost, 1);
  }
}

TEST(ImpossibleChildTest, NonCornerTupleStillBranches) {
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kSQ, 0,
        9},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kSQ, 0,
        9}})).value();
  data::Table t(std::move(schema));
  ASSERT_TRUE(t.Append({3, 4}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto r = SqDbSky(iface.get());
  ASSERT_TRUE(r.ok());
  // Root + two possible (but data-empty) children.
  EXPECT_EQ(r->query_cost, 3);
  EXPECT_EQ(r->skyline.size(), 1u);
}

}  // namespace
}  // namespace core
}  // namespace hdsky
