// Shared helpers for the discovery-algorithm test suites.

#ifndef HDSKY_TESTS_TEST_UTIL_H_
#define HDSKY_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/discovery.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "skyline/compute.h"

namespace hdsky {
namespace testutil {

/// Wraps a table in a top-k interface; aborts the test on failure.
inline std::unique_ptr<interface::TopKInterface> MakeInterface(
    const data::Table* table,
    std::shared_ptr<interface::RankingPolicy> ranking, int k,
    int64_t budget = 0) {
  interface::TopKOptions opts;
  opts.k = k;
  opts.query_budget = budget;
  auto r = interface::TopKInterface::Create(table, std::move(ranking),
                                            opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

/// Distinct ranking-value combinations of a discovery result, sorted —
/// the granularity at which a top-k interface can possibly reveal the
/// skyline (value-duplicates hide behind each other).
inline std::vector<data::Tuple> DiscoveredValues(
    const core::DiscoveryResult& result, const data::Schema& schema) {
  std::vector<data::Tuple> values;
  for (const data::Tuple& t : result.skyline) {
    data::Tuple v;
    for (int attr : schema.ranking_attributes()) {
      v.push_back(t[static_cast<size_t>(attr)]);
    }
    values.push_back(std::move(v));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

/// Asserts that `result` is exactly the skyline of `table` at
/// distinct-value granularity.
inline void ExpectExactSkyline(const core::DiscoveryResult& result,
                               const data::Table& table) {
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(DiscoveredValues(result, table.schema()),
            skyline::DistinctSkylineValues(table));
}

/// Asserts every discovered tuple is on the true skyline (soundness; no
/// completeness requirement — used for anytime/budgeted runs).
inline void ExpectSoundSubset(const core::DiscoveryResult& result,
                              const data::Table& table) {
  const auto truth = skyline::DistinctSkylineValues(table);
  for (const data::Tuple& v : DiscoveredValues(result, table.schema())) {
    EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), v));
  }
}

/// Asserts the anytime trace is monotone in both coordinates and
/// consistent with the final result.
inline void ExpectWellFormedTrace(const core::DiscoveryResult& result) {
  ASSERT_FALSE(result.trace.empty());
  for (size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_GE(result.trace[i].queries_issued,
              result.trace[i - 1].queries_issued);
    EXPECT_GE(result.trace[i].skyline_discovered,
              result.trace[i - 1].skyline_discovered);
  }
  EXPECT_EQ(result.trace.back().queries_issued, result.query_cost);
  EXPECT_EQ(result.trace.back().skyline_discovered,
            static_cast<int64_t>(result.skyline.size()));
}

}  // namespace testutil
}  // namespace hdsky

#endif  // HDSKY_TESTS_TEST_UTIL_H_
