// End-to-end integration tests: the paper's experimental pipelines at
// reduced scale. Each test wires a dataset simulator into a top-k
// interface exactly as the corresponding Section 8 experiment does and
// validates complete discovery against local ground truth.

#include <set>

#include <gtest/gtest.h>

#include "core/baseline_crawler.h"
#include "core/mq_db_sky.h"
#include "core/pq_db_sky.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/blue_nile.h"
#include "dataset/flights_on_time.h"
#include "dataset/google_flights.h"
#include "dataset/yahoo_autos.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::InterfaceType;
using data::Table;
using interface::MakeLexicographicRanking;
using interface::MakeSumRanking;
using testutil::ExpectExactSkyline;
using testutil::MakeInterface;

// The paper's DOT interface: SUM ranking over all ranking attributes.
// We project to a manageable attribute subset like the experiments do.
Table DotSubset(int64_t n, const std::vector<int>& attrs, uint64_t seed) {
  dataset::FlightsOptions o;
  o.num_tuples = n;
  o.seed = seed;
  Table full = std::move(dataset::GenerateFlightsOnTime(o)).value();
  return std::move(full.Project(attrs)).value();
}

TEST(DotIntegration, RangeDiscoveryOnProjectedAttributes) {
  // 4 RQ attributes as in the Figure 14 setup, scaled to 20K tuples.
  const Table t = DotSubset(
      20000,
      {dataset::FlightsAttrs::kDepDelay, dataset::FlightsAttrs::kTaxiOut,
       dataset::FlightsAttrs::kTaxiIn,
       dataset::FlightsAttrs::kActualElapsed},
      201501);
  auto iface_rq = MakeInterface(&t, MakeSumRanking(), 10);
  auto rq = RqDbSky(iface_rq.get());
  ASSERT_TRUE(rq.ok()) << rq.status();
  ExpectExactSkyline(*rq, t);

  // The same data behind an SQ-only interface.
  Table sq_table = t;
  for (int a = 0; a < t.schema().num_attributes(); ++a) {
    sq_table =
        std::move(sq_table.WithInterface(a, InterfaceType::kSQ)).value();
  }
  auto iface_sq = MakeInterface(&sq_table, MakeSumRanking(), 10);
  auto sq = SqDbSky(iface_sq.get());
  ASSERT_TRUE(sq.ok()) << sq.status();
  ExpectExactSkyline(*sq, sq_table);
  // RQ's early termination can only help.
  EXPECT_LE(rq->query_cost, sq->query_cost);
}

TEST(DotIntegration, PointDiscoveryOnGroupAttributes) {
  // 3 PQ group attributes as in the Figure 16 setup.
  const Table t = DotSubset(
      10000,
      {dataset::FlightsAttrs::kDelayGroup,
       dataset::FlightsAttrs::kDistanceGroup,
       dataset::FlightsAttrs::kTaxiOutGroup},
      201502);
  auto iface = MakeInterface(&t, MakeSumRanking(), 10);
  auto result = PqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

TEST(DotIntegration, MixedDiscovery) {
  // 3 RQ + 2 PQ, the Figure 18 interface.
  const Table t = DotSubset(
      10000,
      {dataset::FlightsAttrs::kDepDelay, dataset::FlightsAttrs::kTaxiOut,
       dataset::FlightsAttrs::kTaxiIn,
       dataset::FlightsAttrs::kDelayGroup,
       dataset::FlightsAttrs::kDistanceGroup},
      201503);
  auto iface = MakeInterface(&t, MakeSumRanking(), 10);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

TEST(DotIntegration, FilteringAttributesDoNotDisturbDiscovery) {
  // Keep Carrier/FlightNumber in the schema (Section 2.1's claim).
  dataset::FlightsOptions o;
  o.num_tuples = 8000;
  o.include_derived_groups = false;
  o.seed = 201504;
  Table full = std::move(dataset::GenerateFlightsOnTime(o)).value();
  const Table t = std::move(full.Project(
                                {dataset::FlightsAttrs::kDepDelay,
                                 dataset::FlightsAttrs::kTaxiOut,
                                 dataset::FlightsAttrs::kTaxiIn,
                                 9 /* Carrier */, 10 /* FlightNumber */}))
                      .value();
  ASSERT_EQ(t.schema().num_ranking_attributes(), 3);
  auto iface = MakeInterface(&t, MakeSumRanking(), 10);
  auto result = RqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

TEST(BlueNileIntegration, MqCompleteWhereCappedBaselineIsNot) {
  dataset::BlueNileOptions o;
  o.num_tuples = 20000;
  o.seed = 1;
  const Table t = std::move(dataset::GenerateBlueNile(o)).value();
  // BN ranks by price low-to-high, k = 50 in the paper's comparison.
  auto iface = MakeInterface(
      &t, MakeLexicographicRanking({dataset::BlueNileAttrs::kPrice}), 50);
  auto mq = MqDbSky(iface.get());
  ASSERT_TRUE(mq.ok()) << mq.status();
  ExpectExactSkyline(*mq, t);
  // Paper: ~3.5 queries per skyline tuple on Blue Nile.
  const double per_skyline =
      static_cast<double>(mq->query_cost) /
      static_cast<double>(mq->skyline.size());
  EXPECT_LT(per_skyline, 10.0);

  // BASELINE under the paper's cut-off, scaled to this n (the paper cut
  // 209,666 tuples at 10,000 queries): it cannot finish the crawl, so it
  // can certify NO skyline tuple, and even optimistically counted it has
  // crawled only part of the true skyline.
  auto iface2 = MakeInterface(
      &t, MakeLexicographicRanking({dataset::BlueNileAttrs::kPrice}), 50);
  CrawlOptions copts;
  copts.common.max_queries = 950;  // 10000 * (20000 / 209666)
  auto crawl = CrawlDatabase(iface2.get(), copts);
  ASSERT_TRUE(crawl.ok());
  EXPECT_FALSE(crawl->complete);
  std::set<data::TupleId> crawled(crawl->ids.begin(), crawl->ids.end());
  int64_t sky_crawled = 0;
  for (data::TupleId id : mq->skyline_ids) {
    if (crawled.count(id)) ++sky_crawled;
  }
  EXPECT_LT(sky_crawled, static_cast<int64_t>(mq->skyline.size()));
}

TEST(GoogleFlightsIntegration, CheapCompleteDiscoveryPerRouteAtK1) {
  // The paper's headline: all skyline flights found under the QPX
  // 50-queries/day free limit even with k = 1 (|S| = 4-11 there). Our
  // simulated routes carry slightly larger skylines (7-12), and the
  // anytime property spreads a route across a few daily quotas; assert
  // the same order of magnitude.
  int64_t worst_cost = 0;
  for (uint64_t route = 0; route < 10; ++route) {
    dataset::GoogleFlightsOptions o;
    o.num_flights = 120 + static_cast<int64_t>(route) * 17;
    o.seed = 7000 + route;
    const Table t = std::move(dataset::GenerateRoute(o)).value();
    auto iface = MakeInterface(
        &t,
        MakeLexicographicRanking({dataset::GoogleFlightsAttrs::kPrice}),
        1);
    auto result = MqDbSky(iface.get());
    ASSERT_TRUE(result.ok()) << result.status();
    ExpectExactSkyline(*result, t);
    worst_cost = std::max(worst_cost, result->query_cost);
  }
  EXPECT_LE(worst_cost, 160);
}

TEST(YahooAutosIntegration, MqDiscoversFullSkyline) {
  dataset::YahooAutosOptions o;
  o.num_tuples = 20000;
  o.seed = 2;
  const Table t = std::move(dataset::GenerateYahooAutos(o)).value();
  auto iface = MakeInterface(
      &t, MakeLexicographicRanking({dataset::YahooAutosAttrs::kPrice}),
      50);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
  // Low per-skyline cost, as in Figure 24 (paper: < 2 per skyline tuple).
  ASSERT_FALSE(result->skyline.empty());
  const double per_skyline =
      static_cast<double>(result->query_cost) /
      static_cast<double>(result->skyline.size());
  EXPECT_LT(per_skyline, 10.0);
}

TEST(RateLimitIntegration, MidRunExhaustionIsAnytimeSafe) {
  // Failure injection: the interface budget dies mid-run at several
  // points; results must stay sound subsets and flagged incomplete.
  dataset::BlueNileOptions o;
  o.num_tuples = 5000;
  o.seed = 3;
  const Table t = std::move(dataset::GenerateBlueNile(o)).value();
  auto full_iface = MakeInterface(
      &t, MakeLexicographicRanking({dataset::BlueNileAttrs::kPrice}), 10);
  auto full = MqDbSky(full_iface.get());
  ASSERT_TRUE(full.ok());
  for (int64_t budget = 1; budget < full->query_cost;
       budget += std::max<int64_t>(1, full->query_cost / 7)) {
    auto iface = MakeInterface(
        &t, MakeLexicographicRanking({dataset::BlueNileAttrs::kPrice}),
        10, budget);
    auto partial = MqDbSky(iface.get());
    ASSERT_TRUE(partial.ok()) << partial.status();
    EXPECT_FALSE(partial->complete);
    testutil::ExpectSoundSubset(*partial, t);
  }
}

}  // namespace
}  // namespace core
}  // namespace hdsky
