// Randomized differential testing: MQ-DB-SKY (which dispatches across
// every specialized algorithm) against local ground truth on randomly
// drawn schemas — random interface-type mixes, domain sizes, skew,
// filtering attributes, k, ranking functions, and database sizes. Each
// seed is an independent scenario; a failure prints the full recipe.

#include <numeric>

#include <gtest/gtest.h>

#include "core/mq_db_sky.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::AttributeKind;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;
using data::Value;
using testutil::MakeInterface;

struct Scenario {
  Table table;
  int k;
  std::shared_ptr<interface::RankingPolicy> ranking;
  std::string recipe;
};

Scenario DrawScenario(uint64_t seed) {
  common::Rng rng(seed);
  const int num_ranking = static_cast<int>(rng.UniformInt(2, 5));
  const int num_filtering = static_cast<int>(rng.UniformInt(0, 2));
  std::string recipe = "seed=" + std::to_string(seed) + " attrs=";

  std::vector<data::AttributeSpec> attrs;
  for (int i = 0; i < num_ranking; ++i) {
    data::AttributeSpec a;
    a.name = "R" + std::to_string(i);
    a.kind = AttributeKind::kRanking;
    const int64_t iface_pick = rng.UniformInt(0, 2);
    // PQ attributes get small domains (the paper's premise); range
    // attributes may be large.
    if (iface_pick == 2) {
      a.iface = InterfaceType::kPQ;
      a.domain_max = rng.UniformInt(2, 12);
    } else {
      a.iface = iface_pick == 0 ? InterfaceType::kRQ : InterfaceType::kSQ;
      a.domain_max = rng.UniformInt(4, 400);
    }
    a.domain_min = 0;
    recipe += std::string(a.iface == InterfaceType::kRQ   ? "RQ"
                          : a.iface == InterfaceType::kSQ ? "SQ"
                                                          : "PQ") +
              ":" + std::to_string(a.domain_max + 1) + ",";
    attrs.push_back(std::move(a));
  }
  for (int f = 0; f < num_filtering; ++f) {
    attrs.push_back({"F" + std::to_string(f), AttributeKind::kFiltering,
                     InterfaceType::kFilterEquality, 0,
                     rng.UniformInt(1, 6)});
  }
  Table table(std::move(Schema::Create(attrs)).value());

  const int64_t n = rng.UniformInt(0, 800);
  // Mix of independent and correlated columns via a shared latent value.
  const double corr = rng.UniformReal();
  Tuple t(attrs.size());
  for (int64_t row = 0; row < n; ++row) {
    const double latent = rng.UniformReal();
    for (size_t a = 0; a < attrs.size(); ++a) {
      const auto& spec = attrs[a];
      const double u = rng.Bernoulli(corr) ? latent : rng.UniformReal();
      t[a] = spec.domain_min +
             static_cast<Value>(u * static_cast<double>(
                                        spec.DomainSize() - 1) +
                                0.5);
    }
    EXPECT_TRUE(table.Append(t).ok());
  }

  Scenario s{std::move(table), static_cast<int>(rng.UniformInt(1, 20)),
             nullptr, ""};
  const int64_t ranking_pick = rng.UniformInt(0, 2);
  if (ranking_pick == 0) {
    s.ranking = interface::MakeSumRanking();
    recipe += " ranking=sum";
  } else if (ranking_pick == 1) {
    std::vector<double> w;
    for (int i = 0; i < num_ranking; ++i) {
      w.push_back(rng.UniformReal(0.1, 4.0));
    }
    s.ranking = interface::MakeLinearRanking(std::move(w));
    recipe += " ranking=weighted";
  } else {
    s.ranking = interface::MakeLayeredRandomRanking(seed * 7 + 1);
    recipe += " ranking=layered-random";
  }
  recipe += " n=" + std::to_string(n) + " k=" + std::to_string(s.k) +
            " corr=" + std::to_string(corr);
  s.recipe = recipe;
  return s;
}

class MqFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MqFuzz, MatchesGroundTruthOnRandomScenario) {
  Scenario s = DrawScenario(GetParam() * 2654435761ULL + 17);
  auto iface = MakeInterface(&s.table, s.ranking, s.k);
  auto result = MqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << s.recipe << " -> " << result.status();
  EXPECT_TRUE(result->complete) << s.recipe;
  EXPECT_EQ(testutil::DiscoveredValues(*result, s.table.schema()),
            skyline::DistinctSkylineValues(s.table))
      << s.recipe;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MqFuzz,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace core
}  // namespace hdsky
