#!/bin/sh
# Loopback smoke test: start hdsky_serve on an ephemeral port, run
# hdsky_discover --connect against it, and demand the *identical* skyline
# CSV and external-query count as the same discovery run in-process.
#
# SQ-DB-SKY runs against the route demo (single-predicate attributes);
# RQ-DB-SKY needs two-ended ranges, so it runs against the bluenile demo.
#
# Usage: loopback_smoke.sh <hdsky_serve> <hdsky_discover>
set -u

SERVE=$1
DISCOVER=$2
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hdsky_smoke.XXXXXX") || exit 1
SERVE_PID=""

stop_server() {
  if [ -n "$SERVE_PID" ]; then
    kill -TERM "$SERVE_PID" 2>/dev/null
    wait "$SERVE_PID" 2>/dev/null
    SERVE_PID=""
  fi
}

cleanup() {
  stop_server
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# start_server <demo> <n> <k>: launches hdsky_serve on an ephemeral port
# and sets PORT once the "listening on ADDR:PORT" line appears.
start_server() {
  demo=$1
  n=$2
  k=$3
  : >"$WORK/serve.out"
  "$SERVE" --demo "$demo" --n "$n" --k "$k" --seed 7 --port 0 \
    >"$WORK/serve.out" 2>"$WORK/serve.err" &
  SERVE_PID=$!
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening on" "$WORK/serve.out" 2>/dev/null; then
      break
    fi
    kill -0 "$SERVE_PID" 2>/dev/null \
      || fail "server exited early: $(cat "$WORK/serve.err")"
    i=$((i + 1))
    sleep 0.1
  done
  PORT=$(sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$WORK/serve.out")
  [ -n "$PORT" ] || fail "could not parse port from: $(cat "$WORK/serve.out")"
}

# run_algo <algo> <demo> <n> <k>: remote vs in-process run, identical
# skyline CSV and found/queries summary required. Assumes the matching
# server is already up on $PORT.
run_algo() {
  algo=$1
  demo=$2
  n=$3
  k=$4
  "$DISCOVER" --connect "127.0.0.1:$PORT" --algorithm "$algo" \
    --out "$WORK/remote_$algo.csv" >"$WORK/remote_$algo.txt" \
    2>"$WORK/remote_$algo.err" \
    || fail "$algo: remote discovery failed: $(cat "$WORK/remote_$algo.err")"
  "$DISCOVER" --demo "$demo" --n "$n" --k "$k" --seed 7 --algorithm "$algo" \
    --out "$WORK/local_$algo.csv" >"$WORK/local_$algo.txt" 2>/dev/null \
    || fail "$algo: local discovery failed"

  # The skyline CSVs must be byte-identical.
  diff -q "$WORK/remote_$algo.csv" "$WORK/local_$algo.csv" >/dev/null \
    || fail "$algo: remote and local skyline CSVs differ"
  # And so must the found/queries summary (external-query count).
  remote_summary=$(grep -E '^(found|queries)' "$WORK/remote_$algo.txt")
  local_summary=$(grep -E '^(found|queries)' "$WORK/local_$algo.txt")
  [ -n "$remote_summary" ] || fail "$algo: no summary in remote output"
  [ "$remote_summary" = "$local_summary" ] \
    || fail "$algo: summary mismatch:
remote: $remote_summary
local : $local_summary"
  echo "$algo: skyline and query count identical over loopback"
}

start_server route 2000 10
run_algo sq route 2000 10
stop_server

start_server bluenile 500 10
run_algo rq bluenile 500 10

# The cache stack must not change the discovered skyline.
"$DISCOVER" --connect "127.0.0.1:$PORT" --algorithm rq --cache \
  --out "$WORK/cached.csv" >/dev/null 2>&1 \
  || fail "cached remote discovery failed"
diff -q "$WORK/cached.csv" "$WORK/local_rq.csv" >/dev/null \
  || fail "cached skyline differs"
echo "cache stack: skyline identical"

echo "loopback smoke passed"
