// Robustness suite: NULL values through the whole stack, degenerate
// dimensionalities, and other edges the main suites do not reach.
//
// NULL semantics (data/value.h): NULL ranks worst and a constrained
// interval never matches it. A tuple with NULL on attribute Ai can still
// be on the skyline (if it excels elsewhere) and remains discoverable:
// the completeness argument of Theorem 2 only ever follows a branch on
// an attribute where the tuple BEATS the pivot — never the NULL one.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/kd_index.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::AttributeKind;
using data::InterfaceType;
using data::Schema;
using data::Table;
using data::Tuple;
using data::TupleId;
using data::Value;
using interface::MakeSumRanking;
using interface::Query;
using testutil::ExpectExactSkyline;
using testutil::MakeInterface;

Table MakeNullySynthetic(int64_t n, int m, Value domain, double null_rate,
                         uint64_t seed, InterfaceType iface) {
  std::vector<data::AttributeSpec> attrs;
  for (int i = 0; i < m; ++i) {
    attrs.push_back({"N" + std::to_string(i), AttributeKind::kRanking,
                     iface, 0, domain});
  }
  Table t(std::move(Schema::Create(std::move(attrs))).value());
  common::Rng rng(seed);
  Tuple tuple(static_cast<size_t>(m));
  for (int64_t row = 0; row < n; ++row) {
    for (int a = 0; a < m; ++a) {
      tuple[static_cast<size_t>(a)] = rng.Bernoulli(null_rate)
                                          ? data::kNullValue
                                          : rng.UniformInt(0, domain);
    }
    EXPECT_TRUE(t.Append(tuple).ok());
  }
  return t;
}

TEST(NullValueTest, NullTupleCanBeSkylineAndIsDiscovered) {
  // (NULL, 0) excels on attribute 1; nothing dominates it unless some
  // tuple has A1 <= 0 too.
  auto schema = std::move(Schema::Create(
      {{"a", AttributeKind::kRanking, InterfaceType::kRQ, 0, 100},
       {"b", AttributeKind::kRanking, InterfaceType::kRQ, 0, 100}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({data::kNullValue, 0}).ok());
  ASSERT_TRUE(t.Append({10, 50}).ok());
  ASSERT_TRUE(t.Append({20, 60}).ok());  // dominated
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = RqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
  ASSERT_EQ(result->skyline.size(), 2u);
  // The NULL tuple is among them.
  bool found_null = false;
  for (const Tuple& s : result->skyline) {
    if (s[0] == data::kNullValue) found_null = true;
  }
  EXPECT_TRUE(found_null);
}

struct NullParam {
  int m;
  double rate;
  int k;
  uint64_t seed;
};

class NullSweep : public ::testing::TestWithParam<NullParam> {};

TEST_P(NullSweep, DiscoveryUnderNulls) {
  const NullParam p = GetParam();
  const Table t = MakeNullySynthetic(400, p.m, 40, p.rate, p.seed,
                                     InterfaceType::kRQ);
  // SQ-DB-SKY stays complete under NULLs: its coverage argument only
  // ever follows a branch on an attribute where the tuple beats the
  // pivot — never the NULL one.
  auto iface2 = MakeInterface(&t, MakeSumRanking(), p.k);
  auto sq = SqDbSky(iface2.get());
  ASSERT_TRUE(sq.ok()) << sq.status();
  ExpectExactSkyline(*sq, t);

  // RQ-DB-SKY's R(q) rewrite excludes NULLs from its ">=" bounds (a
  // real site's filters skip unlisted-value items), so it may miss
  // NULL-valued skyline tuples — but must stay sound and find every
  // NULL-free one (see rq_db_sky.h).
  auto iface = MakeInterface(&t, MakeSumRanking(), p.k);
  auto rq = RqDbSky(iface.get());
  ASSERT_TRUE(rq.ok()) << rq.status();
  testutil::ExpectSoundSubset(*rq, t);
  const auto discovered = testutil::DiscoveredValues(*rq, t.schema());
  for (const Tuple& v : skyline::DistinctSkylineValues(t)) {
    bool has_null = false;
    for (Value x : v) has_null = has_null || x == data::kNullValue;
    if (!has_null) {
      EXPECT_TRUE(
          std::binary_search(discovered.begin(), discovered.end(), v));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NullSweep,
    ::testing::Values(NullParam{2, 0.05, 1, 700}, NullParam{3, 0.1, 1, 701},
                      NullParam{3, 0.3, 5, 702}, NullParam{4, 0.2, 3, 703},
                      NullParam{2, 0.9, 1, 704}));

TEST(NullValueTest, KdIndexAgreesWithBruteForceUnderNulls) {
  const Table t = MakeNullySynthetic(3000, 3, 64, 0.15, 705,
                                     InterfaceType::kRQ);
  std::vector<int64_t> rank(static_cast<size_t>(t.num_rows()));
  std::iota(rank.begin(), rank.end(), 0);
  interface::KdIndex index(&t, rank);
  common::Rng rng(706);
  for (int trial = 0; trial < 30; ++trial) {
    Query q(3);
    for (int a = 0; a < 3; ++a) {
      const int64_t mode = rng.UniformInt(0, 2);
      if (mode == 1) q.AddAtMost(a, rng.UniformInt(0, 63));
      if (mode == 2) q.AddAtLeast(a, rng.UniformInt(0, 63));
    }
    std::vector<TupleId> got;
    ASSERT_TRUE(index.RetrieveMatches(q, t.num_rows() + 1, &got));
    std::sort(got.begin(), got.end());
    std::vector<TupleId> expected;
    for (TupleId r = 0; r < t.num_rows(); ++r) {
      if (q.MatchesRow(t, r)) expected.push_back(r);
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(SingleAttributeTest, DiscoveryFindsTheMinimum) {
  auto schema = std::move(Schema::Create(
      {{"only", AttributeKind::kRanking, InterfaceType::kRQ, 0,
        1000}})).value();
  Table t(std::move(schema));
  common::Rng rng(707);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.Append({rng.UniformInt(5, 1000)}).ok());
  }
  ASSERT_TRUE(t.Append({3}).ok());  // the unique minimum
  for (int k : {1, 10}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), k);
    auto result = RqDbSky(iface.get());
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->skyline.size(), 1u);
    EXPECT_EQ(result->skyline[0][0], 3);
    auto iface2 = MakeInterface(&t, MakeSumRanking(), k);
    auto sq = SqDbSky(iface2.get());
    ASSERT_TRUE(sq.ok());
    EXPECT_EQ(sq->skyline.size(), 1u);
  }
}

TEST(AllNullTest, EveryTupleNullOnSomeAttribute) {
  // Each tuple is NULL somewhere; the skyline is the mutual anti-chain.
  auto schema = std::move(Schema::Create(
      {{"a", AttributeKind::kRanking, InterfaceType::kRQ, 0, 10},
       {"b", AttributeKind::kRanking, InterfaceType::kRQ, 0, 10}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({data::kNullValue, 1}).ok());
  ASSERT_TRUE(t.Append({1, data::kNullValue}).ok());
  ASSERT_TRUE(t.Append({data::kNullValue, 2}).ok());  // dominated by #0
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = RqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
  EXPECT_EQ(result->skyline.size(), 2u);
}

}  // namespace
}  // namespace core
}  // namespace hdsky
