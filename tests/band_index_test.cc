// Tests for skyline::BandIndex (the K-band-as-top-k-index application)
// and core::ExpandDuplicates (Section 2.1's equality-query expansion).

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "core/expand_duplicates.h"
#include "core/rq_db_sky.h"
#include "core/skyband_discovery.h"
#include "dataset/synthetic.h"
#include "skyline/band_index.h"
#include "tests/test_util.h"

namespace hdsky {
namespace {

using data::Table;
using data::Tuple;
using data::TupleId;
using interface::MakeSumRanking;
using skyline::BandIndex;
using testutil::MakeInterface;

TEST(BandIndexTest, CreateValidation) {
  EXPECT_FALSE(BandIndex::Create({1}, {{1, 2}, {3, 4}}, {0, 1}, 2).ok());
  EXPECT_FALSE(BandIndex::Create({1}, {{1, 2}}, {0, 1}, 0).ok());
  EXPECT_FALSE(BandIndex::Create({1}, {{1, 2}}, {}, 1).ok());
  EXPECT_FALSE(BandIndex::Create({1}, {{1, 2}}, {0, 5}, 1).ok());
  EXPECT_TRUE(BandIndex::Create({1}, {{1, 2}}, {0, 1}, 1).ok());
}

TEST(BandIndexTest, RejectsKBeyondBand) {
  auto index =
      std::move(BandIndex::Create({1, 2}, {{1, 2}, {2, 1}}, {0, 1}, 2))
          .value();
  EXPECT_TRUE(index.TopK([](const Tuple&) { return 0.0; }, 3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(index.TopK([](const Tuple&) { return 0.0; }, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(BandIndexTest, TopKLinearValidatesWeights) {
  auto index =
      std::move(BandIndex::Create({1, 2}, {{1, 2}, {2, 1}}, {0, 1}, 2))
          .value();
  EXPECT_TRUE(index.TopKLinear({1.0}, 1).status().IsInvalidArgument());
  EXPECT_TRUE(
      index.TopKLinear({1.0, -1.0}, 1).status().IsInvalidArgument());
}

// Property: for random positive weight vectors, top-k answered from a
// discovered K-band equals top-k computed over the entire database.
TEST(BandIndexTest, BandAnswersMatchFullDatabaseTopK) {
  dataset::SyntheticOptions o;
  o.num_tuples = 400;
  o.num_attributes = 3;
  o.domain_size = 60;
  o.iface = data::InterfaceType::kRQ;
  o.seed = 400;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  constexpr int kBand = 3;

  // Discover the band through the interface.
  auto iface = MakeInterface(&t, MakeSumRanking(), 5);
  core::SkybandOptions opts;
  opts.band = kBand;
  auto band = core::RqDbSkyband(iface.get(), opts);
  ASSERT_TRUE(band.ok()) << band.status();
  ASSERT_TRUE(band->complete);
  auto index = std::move(BandIndex::Create(
                             band->skyline_ids, band->skyline,
                             t.schema().ranking_attributes(), kBand))
                   .value();

  common::Rng rng(401);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<double> w = {rng.UniformReal(0.1, 3.0),
                             rng.UniformReal(0.1, 3.0),
                             rng.UniformReal(0.1, 3.0)};
    const int k = 1 + static_cast<int>(rng.UniformInt(0, kBand - 1));
    auto got = index.TopKLinear(w, k);
    ASSERT_TRUE(got.ok()) << got.status();
    // Brute-force reference over the whole table; compare score
    // sequences (ties may resolve to different ids).
    auto score = [&](TupleId row) {
      double s = 0;
      for (int a = 0; a < 3; ++a) {
        s += w[static_cast<size_t>(a)] *
             static_cast<double>(t.value(row, a));
      }
      return s;
    };
    std::vector<TupleId> rows(static_cast<size_t>(t.num_rows()));
    std::iota(rows.begin(), rows.end(), 0);
    std::partial_sort(rows.begin(), rows.begin() + k, rows.end(),
                      [&](TupleId a, TupleId b) {
                        const double sa = score(a);
                        const double sb = score(b);
                        if (sa != sb) return sa < sb;
                        return a < b;
                      });
    for (int i = 0; i < k; ++i) {
      double got_score = 0;
      for (int a = 0; a < 3; ++a) {
        got_score +=
            w[static_cast<size_t>(a)] *
            static_cast<double>(
                (*got)[static_cast<size_t>(i)].second[static_cast<size_t>(a)]);
      }
      EXPECT_DOUBLE_EQ(got_score, score(rows[static_cast<size_t>(i)]))
          << "trial " << trial << " position " << i;
    }
  }
}

TEST(ExpandDuplicatesTest, FindsAllValueTwins) {
  // Three skyline value combos; one of them shared by four tuples that
  // differ only in a filtering attribute.
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100},
       {"f", data::AttributeKind::kFiltering,
        data::InterfaceType::kFilterEquality, 0, 9}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({10, 50, 0}).ok());  // twin group
  ASSERT_TRUE(t.Append({10, 50, 1}).ok());
  ASSERT_TRUE(t.Append({10, 50, 2}).ok());
  ASSERT_TRUE(t.Append({10, 50, 3}).ok());
  ASSERT_TRUE(t.Append({5, 80, 0}).ok());   // unique skyline tuples
  ASSERT_TRUE(t.Append({40, 20, 1}).ok());
  ASSERT_TRUE(t.Append({60, 60, 2}).ok());  // dominated

  auto iface = MakeInterface(&t, MakeSumRanking(), 2);  // k = 2 < 4 twins
  auto discovery = core::RqDbSky(iface.get());
  ASSERT_TRUE(discovery.ok());
  ASSERT_EQ(discovery->skyline.size(), 3u);

  auto expanded = core::ExpandDuplicates(iface.get(), *discovery);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_TRUE(expanded->complete);
  ASSERT_EQ(expanded->groups.size(), 3u);
  size_t total = 0;
  bool found_twins = false;
  for (const auto& g : expanded->groups) {
    EXPECT_TRUE(g.complete);
    total += g.ids.size();
    if (g.ids.size() == 4u) {
      found_twins = true;
      std::set<TupleId> ids(g.ids.begin(), g.ids.end());
      EXPECT_EQ(ids, (std::set<TupleId>{0, 1, 2, 3}));
    }
  }
  EXPECT_TRUE(found_twins);
  EXPECT_EQ(total, 6u);  // 4 twins + 2 singletons
}

TEST(ExpandDuplicatesTest, EmptyDiscoveryExpandsToNothing) {
  // An empty-result merge: expanding a discovery that found nothing
  // costs nothing and is trivially complete.
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100}})).value();
  Table t(std::move(schema));
  auto iface = MakeInterface(&t, MakeSumRanking(), 2);
  core::DiscoveryResult empty;
  empty.complete = true;
  auto expanded = core::ExpandDuplicates(iface.get(), empty);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_TRUE(expanded->complete);
  EXPECT_TRUE(expanded->groups.empty());
  EXPECT_EQ(expanded->query_cost, 0);
}

TEST(ExpandDuplicatesTest, NonOverflowingTwinsCostOneQueryEach) {
  // Equal-ranked tuples differing only in the unranked key, but k is
  // large enough that the equality query does not overflow: one query
  // per skyline tuple, no crawl.
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100},
       {"f", data::AttributeKind::kFiltering,
        data::InterfaceType::kFilterEquality, 0, 9}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({10, 50, 4}).ok());  // twins
  ASSERT_TRUE(t.Append({10, 50, 7}).ok());
  ASSERT_TRUE(t.Append({5, 80, 0}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 3);
  auto discovery = core::RqDbSky(iface.get());
  ASSERT_TRUE(discovery.ok());
  const int64_t discovery_cost = discovery->query_cost;

  auto expanded = core::ExpandDuplicates(iface.get(), *discovery);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  EXPECT_TRUE(expanded->complete);
  ASSERT_EQ(expanded->groups.size(), 2u);
  for (const auto& g : expanded->groups) {
    EXPECT_TRUE(g.complete);
    EXPECT_EQ(g.ids.size(), g.tuples.size());
  }
  // One equality query per discovered tuple, nothing else.
  EXPECT_EQ(expanded->query_cost, 2);
  EXPECT_GT(discovery_cost, 0);
}

TEST(ExpandDuplicatesTest, UncrawlableTwinGroupIsFlaggedIncomplete) {
  // Four identical rank vectors, NO filtering attribute: the equality
  // query overflows at k=2 and there is no attribute left to enumerate
  // the match set with — the group (and the result) must be flagged,
  // not silently truncated.
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        100}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({10, 50}).ok());
  ASSERT_TRUE(t.Append({10, 50}).ok());
  ASSERT_TRUE(t.Append({10, 50}).ok());
  ASSERT_TRUE(t.Append({10, 50}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 2);
  auto discovery = core::RqDbSky(iface.get());
  ASSERT_TRUE(discovery.ok());
  ASSERT_EQ(discovery->skyline.size(), 1u);

  auto expanded = core::ExpandDuplicates(iface.get(), *discovery);
  ASSERT_TRUE(expanded.ok()) << expanded.status();
  ASSERT_EQ(expanded->groups.size(), 1u);
  EXPECT_FALSE(expanded->groups[0].complete);
  EXPECT_FALSE(expanded->complete);
  // The representative and its page-mates are still reported.
  EXPECT_GE(expanded->groups[0].ids.size(), 2u);
}

TEST(ExpandDuplicatesTest, BudgetStopsEarly) {
  dataset::SyntheticOptions o;
  o.num_tuples = 300;
  o.num_attributes = 2;
  o.domain_size = 40;
  o.iface = data::InterfaceType::kRQ;
  o.seed = 402;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 3);
  auto discovery = core::RqDbSky(iface.get());
  ASSERT_TRUE(discovery.ok());
  ASSERT_GT(discovery->skyline.size(), 1u);
  core::CrawlOptions opts;
  opts.common.max_queries = 1;
  auto expanded =
      core::ExpandDuplicates(iface.get(), *discovery, opts);
  ASSERT_TRUE(expanded.ok());
  EXPECT_FALSE(expanded->complete);
  EXPECT_EQ(expanded->groups.size(), 1u);
}

}  // namespace
}  // namespace hdsky
