// Tests for the epoll event loop: fd dispatch, cross-thread Post,
// self-removal safety, tick cadence, and stop semantics. These run real
// pipes and threads (the TSan CI job stresses them), not mocks.

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/event_loop.h"

namespace hdsky {
namespace net {
namespace {

/// A nonblocking pipe pair closed on destruction.
struct Pipe {
  int rd = -1;
  int wr = -1;
  Pipe() {
    int fds[2];
    EXPECT_EQ(pipe2(fds, O_NONBLOCK | O_CLOEXEC), 0);
    rd = fds[0];
    wr = fds[1];
  }
  ~Pipe() {
    if (rd >= 0) close(rd);
    if (wr >= 0) close(wr);
  }
};

TEST(EventLoopTest, DispatchesReadReadiness) {
  auto loop_result = EventLoop::Create();
  ASSERT_TRUE(loop_result.ok());
  auto loop = std::move(loop_result).value();

  Pipe p;
  std::atomic<int> reads{0};
  ASSERT_TRUE(loop->Add(p.rd, EPOLLIN, [&](uint32_t events) {
    EXPECT_TRUE(events & EPOLLIN);
    char buf[16];
    while (read(p.rd, buf, sizeof(buf)) > 0) {
    }
    if (reads.fetch_add(1) + 1 == 3) loop->Stop();
  }).ok());

  std::jthread writer([&] {
    for (int i = 0; i < 3; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ASSERT_EQ(write(p.wr, "x", 1), 1);
    }
  });
  loop->Run(50, [] {});
  EXPECT_EQ(reads.load(), 3);
}

TEST(EventLoopTest, PostRunsTasksOnLoopThread) {
  auto loop = std::move(EventLoop::Create()).value();
  std::atomic<int> ran{0};
  std::atomic<bool> on_loop_thread{false};
  std::jthread poster([&] {
    for (int i = 0; i < 100; ++i) {
      loop->Post([&] {
        on_loop_thread.store(loop->InLoopThread());
        if (ran.fetch_add(1) + 1 == 100) loop->Stop();
      });
    }
  });
  loop->Run(50, [] {});
  EXPECT_EQ(ran.load(), 100);
  EXPECT_TRUE(on_loop_thread.load());
}

TEST(EventLoopTest, CallbackMayRemoveItsOwnFd) {
  auto loop = std::move(EventLoop::Create()).value();
  Pipe p;
  std::atomic<int> fires{0};
  ASSERT_TRUE(loop->Add(p.rd, EPOLLIN, [&](uint32_t) {
    fires.fetch_add(1);
    loop->Remove(p.rd);  // must not crash mid-dispatch
    loop->Post([&] { loop->Stop(); });
  }).ok());
  ASSERT_EQ(write(p.wr, "x", 1), 1);
  loop->Run(50, [] {});
  // Removed after the first dispatch: level-triggered readiness must not
  // fire it again even though the byte was never drained.
  EXPECT_EQ(fires.load(), 1);
  EXPECT_EQ(loop->num_fds(), 0u);
}

TEST(EventLoopTest, TickFiresWithoutIo) {
  auto loop = std::move(EventLoop::Create()).value();
  int ticks = 0;
  const auto start = std::chrono::steady_clock::now();
  loop->Run(5, [&] {
    if (++ticks >= 3) loop->Stop();
  });
  EXPECT_GE(ticks, 3);
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(10));
}

TEST(EventLoopTest, StopFromAnotherThreadUnblocksRun) {
  auto loop = std::move(EventLoop::Create()).value();
  std::jthread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop->Stop();
  });
  loop->Run(1000, [] {});  // must return well before the 1 s tick
  SUCCEED();
}

TEST(EventLoopTest, PostedTasksSurviveConcurrentStop) {
  // Tasks posted around Stop() must either run or be dropped — never
  // crash or deadlock. Run many rounds to give TSan material.
  for (int round = 0; round < 20; ++round) {
    auto loop = std::move(EventLoop::Create()).value();
    std::atomic<int> ran{0};
    std::jthread poster([&] {
      for (int i = 0; i < 50; ++i) loop->Post([&] { ran.fetch_add(1); });
      loop->Stop();
    });
    loop->Run(10, [] {});
  }
  SUCCEED();
}

TEST(EventLoopTest, ModifySwitchesInterest) {
  auto loop = std::move(EventLoop::Create()).value();
  Pipe p;
  std::atomic<int> write_ready{0};
  ASSERT_TRUE(loop->Add(p.wr, EPOLLOUT, [&](uint32_t events) {
    if (events & EPOLLOUT) {
      if (write_ready.fetch_add(1) == 0) {
        // An empty pipe is always writable; switch interest off so the
        // loop quiesces instead of spinning on EPOLLOUT.
        EXPECT_TRUE(loop->Modify(p.wr, 0).ok());
        loop->Post([&] { loop->Stop(); });
      }
    }
  }).ok());
  loop->Run(50, [] {});
  EXPECT_EQ(write_ready.load(), 1);
}

TEST(FdCapacityTest, EnsureFdCapacityIsIdempotent) {
  EXPECT_TRUE(EnsureFdCapacity(64).ok());
  EXPECT_TRUE(EnsureFdCapacity(64).ok());
}

TEST(NonBlockingTest, SetsTheFlag) {
  Pipe p;
  int flags = fcntl(p.rd, F_GETFL);
  ASSERT_GE(flags, 0);
  // pipe2 already set O_NONBLOCK; clear it first to test the helper.
  ASSERT_EQ(fcntl(p.rd, F_SETFL, flags & ~O_NONBLOCK), 0);
  EXPECT_TRUE(SetNonBlocking(p.rd).ok());
  flags = fcntl(p.rd, F_GETFL);
  EXPECT_TRUE(flags & O_NONBLOCK);
}

}  // namespace
}  // namespace net
}  // namespace hdsky
