// Durable remote sessions under a hostile network: a journaled discovery
// run against a remote server is interrupted mid-flight (with the fault
// proxy dropping and truncating frames the whole time), then resumed with
// the same journal directory and session id. The resumed run must finish
// with the clean in-process skyline, and the server's accounting must
// agree with the client's journal exactly: every distinct query charged
// once, however many crashes, retries, and replays it took.

#include <filesystem>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "core/rq_db_sky.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "recovery/journaling_database.h"
#include "service/fault_proxy.h"
#include "service/remote_database.h"
#include "service/server.h"

namespace hdsky {
namespace recovery {
namespace {

using interface::TopKInterface;
using interface::TopKOptions;
using service::DatabaseServer;
using service::FaultInjectingProxy;
using service::RemoteHiddenDatabase;

/// High-cardinality RQ table: RQ-DB-SKY issues ~100 queries here, so the
/// per-frame fault probabilities fire with certainty in practice and the
/// interrupt lands well before completion.
data::Table MakeBusyTable() {
  dataset::SyntheticOptions gen;
  gen.num_tuples = 1000;
  gen.num_attributes = 4;
  gen.domain_size = 1000;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 1234;
  return std::move(dataset::GenerateSynthetic(gen)).value();
}

std::unique_ptr<TopKInterface> MakeBackend(const data::Table* t) {
  TopKOptions opts;
  opts.k = 5;
  return std::move(
             TopKInterface::Create(t, interface::MakeSumRanking(), opts))
      .value();
}

/// Fast deterministic client options; the fixed session id is what a
/// durable session persists in <journal>/SESSION.
RemoteHiddenDatabase::Options FastClient(uint64_t session) {
  RemoteHiddenDatabase::Options o;
  o.connect_timeout_ms = 2000;
  o.io_timeout_ms = 2000;
  o.max_attempts = 8;
  o.initial_backoff_ms = 1;
  o.max_backoff_ms = 8;
  o.session_id = session;
  o.jitter_seed = 7;
  return o;
}

struct ScopedDir {
  ScopedDir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "hdsky_recovery_remote.XXXXXX")
                           .string();
    char* made = ::mkdtemp(tmpl.data());
    EXPECT_NE(made, nullptr);
    path = tmpl;
  }
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

TEST(RecoveryRemoteTest, InterruptedSessionResumesWithoutDoubleCharging) {
  const data::Table t = MakeBusyTable();
  constexpr uint64_t kSession = 4242;
  constexpr int64_t kBudget = 1000;

  // Clean in-process reference.
  auto clean_backend = MakeBackend(&t);
  auto clean = core::RqDbSky(clean_backend.get());
  ASSERT_TRUE(clean.ok()) << clean.status();
  ASSERT_TRUE(clean->complete);

  auto backend = MakeBackend(&t);
  DatabaseServer::Options sopts;
  sopts.per_client_query_budget = kBudget;
  auto server =
      std::move(DatabaseServer::Start(backend.get(), sopts)).value();
  FaultInjectingProxy::Policy policy;
  policy.seed = 11;
  policy.drop_prob = 0.02;
  policy.truncate_prob = 0.02;
  auto proxy = std::move(FaultInjectingProxy::Start(
                             "127.0.0.1", server->port(), policy))
                   .value();

  ScopedDir dir;

  // Phase A: journaled run, interrupted after 40 paid queries. The
  // journal is abandoned without a final checkpoint — the moral
  // equivalent of the process dying.
  int64_t phase_a_paid = 0;
  {
    auto remote = std::move(RemoteHiddenDatabase::Connect(
                                "127.0.0.1", proxy->port(),
                                FastClient(kSession)))
                      .value();
    JournalingDatabase::Options jopts;
    RemoteHiddenDatabase* r = remote.get();
    jopts.seq_provider = [r] { return r->next_seq(); };
    auto journal =
        std::move(JournalingDatabase::Open(remote.get(), dir.path, jopts))
            .value();
    remote->set_next_seq(journal->next_wire_seq());

    core::RqDbSkyOptions opts;
    JournalingDatabase* j = journal.get();
    opts.common.interrupt = [j] { return j->stats().paid >= 40; };
    auto partial = core::RqDbSky(journal.get(), opts);
    ASSERT_TRUE(partial.ok()) << partial.status();
    EXPECT_FALSE(partial->complete);
    phase_a_paid = journal->stats().paid;
    ASSERT_GE(phase_a_paid, 40);
  }

  // Phase B: resume — same journal directory, same session id, same
  // hostile network. Journaled answers replay locally; only genuinely
  // new queries reach the server.
  int64_t journaled_entries = 0;
  {
    auto remote = std::move(RemoteHiddenDatabase::Connect(
                                "127.0.0.1", proxy->port(),
                                FastClient(kSession)))
                      .value();
    JournalingDatabase::Options jopts;
    RemoteHiddenDatabase* r = remote.get();
    jopts.seq_provider = [r] { return r->next_seq(); };
    auto journal =
        std::move(JournalingDatabase::Open(remote.get(), dir.path, jopts))
            .value();
    remote->set_next_seq(journal->next_wire_seq());
    EXPECT_TRUE(journal->resumed());
    EXPECT_GE(journal->entries(), phase_a_paid);

    auto resumed = core::RqDbSky(journal.get());
    ASSERT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_TRUE(resumed->complete);
    EXPECT_EQ(resumed->skyline_ids, clean->skyline_ids);
    EXPECT_EQ(resumed->query_cost, clean->query_cost);
    // The paid prefix really was free the second time around.
    EXPECT_GT(journal->stats().replayed, 0);
    journaled_entries = journal->entries();
  }

  // Server-side session budget must agree with the client's journal: a
  // fresh handshake under the same session id reports the budget minus
  // exactly one charge per journaled answer.
  {
    auto probe = RemoteHiddenDatabase::Connect("127.0.0.1", server->port(),
                                               FastClient(kSession));
    ASSERT_TRUE(probe.ok()) << probe.status();
    EXPECT_EQ((*probe)->server_remaining_budget(),
              kBudget - journaled_entries);
  }

  proxy->Stop();
  server->Stop();

  // Faults actually fired — this was not a clean network.
  const FaultInjectingProxy::Stats pstats = proxy->stats();
  EXPECT_GT(pstats.frames_dropped + pstats.frames_truncated, 0);

  // Exactly-once accounting at the backend: one execution per journaled
  // answer — retried sequences were replayed from the server's session
  // cache, and the resumed run re-charged nothing.
  const DatabaseServer::Stats sstats = server->stats();
  EXPECT_EQ(sstats.queries_served, journaled_entries);
  EXPECT_EQ(backend->stats().queries_issued, journaled_entries);
}

}  // namespace
}  // namespace recovery
}  // namespace hdsky
