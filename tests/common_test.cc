// Unit tests for common/: Status, Result, macros, Rng, math utilities.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/math_util.h"
#include "common/rng.h"
#include "common/status.h"

namespace hdsky {
namespace common {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  const Status s = Status::Unsupported("no lower bound");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsUnsupported());
  EXPECT_EQ(s.message(), "no lower bound");
  EXPECT_EQ(s.ToString(), "Unsupported: no lower bound");
}

TEST(StatusTest, AllCodesStringify) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIOError), "IOError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kAlreadyExists),
               "AlreadyExists");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::OK());
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int x) {
  HDSKY_RETURN_IF_ERROR(FailIfNegative(x));
  return 2 * x;
}

Result<int> ChainThroughMacro(int x) {
  HDSKY_ASSIGN_OR_RETURN(const int doubled, DoubleIfPositive(x));
  return doubled + 1;
}

TEST(MacroTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(DoubleIfPositive(3).ok());
  EXPECT_TRUE(DoubleIfPositive(-3).status().IsInvalidArgument());
}

TEST(MacroTest, AssignOrReturnUnwrapsAndPropagates) {
  ASSERT_TRUE(ChainThroughMacro(5).ok());
  EXPECT_EQ(*ChainThroughMacro(5), 11);
  EXPECT_TRUE(ChainThroughMacro(-5).status().IsInvalidArgument());
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit over 2000 draws
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformReal();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(15);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.Exponential(0.5);
  EXPECT_NEAR(sum / 20000.0, 2.0, 0.1);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(17);
  const std::vector<int64_t> p = rng.Permutation(50);
  std::set<int64_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 49);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  const std::vector<int64_t> s = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<int64_t> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (int64_t v : s) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleClampsToPopulation) {
  Rng rng(21);
  EXPECT_EQ(rng.SampleWithoutReplacement(5, 9).size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Fork();
  EXPECT_NE(a.Next(), b.Next());
}

TEST(MathTest, LogFactorialSmallValues) {
  EXPECT_NEAR(LogFactorial(0), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(1), 0.0, 1e-12);
  EXPECT_NEAR(LogFactorial(5), std::log(120.0), 1e-9);
}

TEST(MathTest, LogBinomial) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomial(10, 0)), 1.0, 1e-9);
  EXPECT_EQ(LogBinomial(3, 5), -INFINITY);
  EXPECT_EQ(LogBinomial(3, -1), -INFINITY);
}

TEST(MathTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(10, 3), 4);
  EXPECT_EQ(CeilDiv(9, 3), 3);
  EXPECT_EQ(CeilDiv(0, 5), 0);
}

TEST(MathTest, Clamp) {
  EXPECT_EQ(Clamp(5, 0, 10), 5);
  EXPECT_EQ(Clamp(-5, 0, 10), 0);
  EXPECT_EQ(Clamp(15, 0, 10), 10);
}

}  // namespace
}  // namespace common
}  // namespace hdsky
