#!/bin/sh
# Argument-validation contract for the CLI tools: unknown flags and
# malformed values must print usage to stderr and exit non-zero (64),
# and must not start doing work.
#
# Usage: cli_args_test.sh <hdsky_discover> <hdsky_serve> [hdsky_pack]
set -u

DISCOVER=$1
SERVE=$2
PACK=${3:-}
failures=0

# expect_usage <label> <binary> [args...]
expect_usage() {
  label=$1
  shift
  err=$("$@" 2>&1 >/dev/null)
  code=$?
  if [ "$code" -ne 64 ]; then
    echo "FAIL($label): exit $code, want 64" >&2
    failures=$((failures + 1))
    return
  fi
  case "$err" in
    *usage:*) ;;
    *)
      echo "FAIL($label): no usage on stderr; got: $err" >&2
      failures=$((failures + 1))
      ;;
  esac
}

# Unknown flags.
expect_usage "discover-unknown-flag" "$DISCOVER" --demo route --bogus
expect_usage "serve-unknown-flag" "$SERVE" --demo route --bogus

# Source selection: none, two, all three.
expect_usage "discover-no-source" "$DISCOVER"
expect_usage "discover-two-sources" "$DISCOVER" --demo route --data x.csv
expect_usage "discover-connect-plus-demo" \
  "$DISCOVER" --connect 127.0.0.1:1 --demo route
expect_usage "serve-no-source" "$SERVE"

# Malformed --connect specs.
expect_usage "connect-no-colon" "$DISCOVER" --connect localhost
expect_usage "connect-bad-port" "$DISCOVER" --connect localhost:notaport
expect_usage "connect-port-zero" "$DISCOVER" --connect localhost:0
expect_usage "connect-port-high" "$DISCOVER" --connect localhost:65536

# Malformed numerics: trailing garbage, negatives, zero where >= 1.
expect_usage "threads-garbage" "$DISCOVER" --demo route --trials 2 --threads 2x
expect_usage "trials-zero" "$DISCOVER" --demo route --trials 0
expect_usage "trials-negative" "$DISCOVER" --demo route --trials -3
expect_usage "k-garbage" "$DISCOVER" --demo route --k ten
expect_usage "n-zero" "$DISCOVER" --demo route --n 0
expect_usage "budget-negative" "$DISCOVER" --demo route --budget -1
expect_usage "serve-port-garbage" "$SERVE" --demo route --port 80h
expect_usage "serve-max-conn-zero" "$SERVE" --demo route --max-connections 0

# Event-driven engine flags: unknown engine names and malformed knobs.
expect_usage "serve-unknown-engine" "$SERVE" --demo route --engine fibers
expect_usage "serve-engine-dangling" "$SERVE" --demo route --engine
expect_usage "serve-loops-garbage" "$SERVE" --demo route --loops 2x
expect_usage "serve-loops-negative" "$SERVE" --demo route --loops -1
expect_usage "serve-max-pending-garbage" "$SERVE" --demo route --max-pending p
expect_usage "serve-idle-timeout-negative" \
  "$SERVE" --demo route --idle-timeout-ms -5

# Flags that need a value but sit at the end of the line.
expect_usage "discover-dangling-value" "$DISCOVER" --demo
expect_usage "serve-dangling-value" "$SERVE" --demo route --port

# Local-interface flags are rejected alongside --connect.
expect_usage "connect-with-k" "$DISCOVER" --connect 127.0.0.1:1 --k 5
expect_usage "connect-with-budget" "$DISCOVER" --connect 127.0.0.1:1 --budget 9
expect_usage "connect-with-trials" "$DISCOVER" --connect 127.0.0.1:1 --trials 2

# Durable-session flags: journal knobs need --journal, and single-run
# durability is incompatible with --trials.
expect_usage "sync-every-without-journal" \
  "$DISCOVER" --demo route --sync-every 4
expect_usage "checkpoint-every-without-journal" \
  "$DISCOVER" --demo route --checkpoint-every 16
expect_usage "sync-every-zero" \
  "$DISCOVER" --demo route --journal /tmp/j --sync-every 0
expect_usage "checkpoint-every-garbage" \
  "$DISCOVER" --demo route --journal /tmp/j --checkpoint-every 5x
expect_usage "journal-with-trials" \
  "$DISCOVER" --demo route --trials 2 --journal /tmp/j
expect_usage "cache-file-with-trials" \
  "$DISCOVER" --demo route --trials 2 --cache-file /tmp/c
expect_usage "trace-with-trials" \
  "$DISCOVER" --demo route --trials 2 --trace /tmp/t.csv

# Federation flags: --federate's vocabulary, and the flags it requires,
# forbids, or combines with.
expect_usage "federate-unknown-mode" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate both
expect_usage "federate-without-connect" "$DISCOVER" --demo route --federate union
expect_usage "multi-connect-without-federate" \
  "$DISCOVER" --connect 127.0.0.1:1,127.0.0.1:2
expect_usage "connect-bad-second-endpoint" \
  "$DISCOVER" --connect 127.0.0.1:1,localhost --federate union
expect_usage "join-without-join-attr" \
  "$DISCOVER" --connect 127.0.0.1:1,127.0.0.1:2 --federate join
expect_usage "union-with-join-attr" \
  "$DISCOVER" --connect 127.0.0.1:1,127.0.0.1:2 --federate union --join-attr id
expect_usage "round-budget-without-federate" \
  "$DISCOVER" --connect 127.0.0.1:1 --round-budget 16
expect_usage "federation-json-without-federate" \
  "$DISCOVER" --connect 127.0.0.1:1 --federation-json /tmp/f.json
expect_usage "round-budget-garbage" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --round-budget 8x
expect_usage "federate-with-cache" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --cache
expect_usage "federate-with-trace" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --trace /tmp/t.csv
expect_usage "federate-bad-algorithm" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --algorithm baseline

# Health-machine knobs ride only on --federate, and their ranges hold.
expect_usage "probe-attempts-without-federate" \
  "$DISCOVER" --connect 127.0.0.1:1 --probe-attempts 5
expect_usage "probe-backoff-without-federate" \
  "$DISCOVER" --connect 127.0.0.1:1 --probe-backoff 3
expect_usage "probe-attempts-garbage" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --probe-attempts 5x
expect_usage "probe-attempts-negative" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --probe-attempts -1
expect_usage "probe-backoff-zero" \
  "$DISCOVER" --connect 127.0.0.1:1 --federate union --probe-backoff 0

# Exit-code contract for unreachable backends: a FRESH run that cannot
# connect is an ordinary failure (1), but when a journal directory shows
# an existing session the same failure is 69/EX_UNAVAILABLE — "the
# session is intact, the site is down, retry later" — for both the
# single-site and the federated resume paths.
expect_unavailable_on_resume() {
  label=$1
  shift
  "$@" >/dev/null 2>&1
  code=$?
  if [ "$code" -ne 69 ]; then
    echo "FAIL($label): exit $code, want 69" >&2
    failures=$((failures + 1))
  fi
}
tmpj=$(mktemp -d)
# Fresh journal, dead endpoint: nothing to preserve, plain failure.
"$DISCOVER" --connect 127.0.0.1:1 --journal "$tmpj/fresh" >/dev/null 2>&1
code=$?
if [ "$code" -ne 1 ]; then
  echo "FAIL(fresh-connect-failure-exit): exit $code, want 1" >&2
  failures=$((failures + 1))
fi
# Single-site resume: a MANIFEST marks an existing session.
mkdir -p "$tmpj/single"
: > "$tmpj/single/MANIFEST"
expect_unavailable_on_resume "single-resume-backend-down" \
  "$DISCOVER" --connect 127.0.0.1:1 --journal "$tmpj/single"
# Federated resume: a STATE checkpoint marks an existing session.
mkdir -p "$tmpj/fed"
: > "$tmpj/fed/STATE"
expect_unavailable_on_resume "federated-resume-backend-down" \
  "$DISCOVER" --connect 127.0.0.1:1,127.0.0.1:2 --federate union \
  --journal "$tmpj/fed"
rm -rf "$tmpj"

# --dump-data is a local-table affair.
expect_usage "dump-data-with-connect" \
  "$DISCOVER" --connect 127.0.0.1:1 --dump-data /tmp/d.csv
expect_usage "dump-data-with-trials" \
  "$DISCOVER" --demo route --trials 2 --dump-data /tmp/d.csv

# Out-of-core flags: --dataset-file is a data source (exactly one of
# --data/--demo/--dataset-file/--connect), --buffer-pool-bytes rides
# only on it, and a packed file fixes generation/ranking knobs at pack
# time. Validation fires before the file is opened, so the paths need
# not exist.
expect_usage "serve-dataset-file-plus-demo" \
  "$SERVE" --demo route --dataset-file /tmp/x.hdb
expect_usage "serve-dataset-file-with-ranking" \
  "$SERVE" --dataset-file /tmp/x.hdb --ranking sum
expect_usage "serve-pool-without-dataset-file" \
  "$SERVE" --demo route --buffer-pool-bytes 1048576
expect_usage "serve-pool-bytes-garbage" \
  "$SERVE" --dataset-file /tmp/x.hdb --buffer-pool-bytes 1m
expect_usage "serve-pool-bytes-zero" \
  "$SERVE" --dataset-file /tmp/x.hdb --buffer-pool-bytes 0
expect_usage "serve-dataset-file-dangling" "$SERVE" --dataset-file
expect_usage "discover-dataset-file-plus-demo" \
  "$DISCOVER" --demo route --dataset-file /tmp/x.hdb
expect_usage "discover-dataset-file-plus-connect" \
  "$DISCOVER" --connect 127.0.0.1:1 --dataset-file /tmp/x.hdb
expect_usage "discover-pool-without-dataset-file" \
  "$DISCOVER" --demo route --buffer-pool-bytes 1048576
expect_usage "discover-pool-bytes-zero" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --buffer-pool-bytes 0
expect_usage "discover-dataset-file-with-n" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --n 100
expect_usage "discover-dataset-file-with-seed" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --seed 5
expect_usage "discover-dataset-file-with-ranking" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --ranking sum
expect_usage "discover-dataset-file-with-trials" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --trials 2
expect_usage "discover-dataset-file-with-dump-data" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --dump-data /tmp/d.csv

# hdsky_pack (when supplied): source/output selection and block
# geometry validation.
if [ -n "$PACK" ]; then
  expect_usage "pack-no-source" "$PACK" --out /tmp/x.hdb
  expect_usage "pack-two-sources" \
    "$PACK" --demo route --data x.csv --out /tmp/x.hdb
  expect_usage "pack-missing-out" "$PACK" --demo route
  expect_usage "pack-out-dangling" "$PACK" --demo route --out
  expect_usage "pack-rows-per-block-zero" \
    "$PACK" --demo route --out /tmp/x.hdb --rows-per-block 0
  expect_usage "pack-rows-per-block-garbage" \
    "$PACK" --demo route --out /tmp/x.hdb --rows-per-block 4k
  expect_usage "pack-n-zero" "$PACK" --demo route --out /tmp/x.hdb --n 0
  expect_usage "pack-unknown-flag" \
    "$PACK" --demo route --out /tmp/x.hdb --bogus
  expect_usage "pack-compress-unknown" \
    "$PACK" --demo route --out /tmp/x.hdb --compress gzip
  expect_usage "pack-compress-dangling" \
    "$PACK" --demo route --out /tmp/x.hdb --compress
fi

# Read-path flags: vocabulary, numeric range, and the --dataset-file
# dependency (the pool flags describe a paged table, nothing else).
expect_usage "discover-read-path-unknown" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --read-path directio
expect_usage "discover-read-path-dangling" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --read-path
expect_usage "discover-read-path-without-dataset-file" \
  "$DISCOVER" --demo route --read-path pread
expect_usage "discover-readahead-garbage" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --readahead-pages 8x
expect_usage "discover-readahead-negative" \
  "$DISCOVER" --dataset-file /tmp/x.hdb --readahead-pages -1
expect_usage "discover-readahead-without-dataset-file" \
  "$DISCOVER" --demo route --readahead-pages 8
expect_usage "serve-read-path-unknown" \
  "$SERVE" --dataset-file /tmp/x.hdb --read-path directio
expect_usage "serve-read-path-without-dataset-file" \
  "$SERVE" --demo route --read-path mmap
expect_usage "serve-readahead-garbage" \
  "$SERVE" --dataset-file /tmp/x.hdb --readahead-pages p
expect_usage "serve-readahead-without-dataset-file" \
  "$SERVE" --demo route --readahead-pages 4

# A below-one-page --buffer-pool-bytes must not be silently clamped:
# the run proceeds (exit 0) but a warning with the effective budget
# lands on stderr.
if [ -n "$PACK" ]; then
  tmpdir=$(mktemp -d)
  if "$PACK" --demo bluenile --n 500 --out "$tmpdir/clamp.hdb" \
      >/dev/null 2>&1; then
    err=$("$DISCOVER" --dataset-file "$tmpdir/clamp.hdb" \
        --buffer-pool-bytes 1 --algorithm rq --k 5 2>&1 >/dev/null)
    code=$?
    if [ "$code" -ne 0 ]; then
      echo "FAIL(pool-clamp-warning): exit $code, want 0" >&2
      failures=$((failures + 1))
    else
      case "$err" in
        *"warning: --buffer-pool-bytes 1 below one page"*) ;;
        *)
          echo "FAIL(pool-clamp-warning): no clamp warning; got: $err" >&2
          failures=$((failures + 1))
          ;;
      esac
    fi
  else
    echo "FAIL(pool-clamp-warning): pack step failed" >&2
    failures=$((failures + 1))
  fi
  rm -rf "$tmpdir"
fi

if [ "$failures" -ne 0 ]; then
  echo "$failures argument-validation case(s) failed" >&2
  exit 1
fi
echo "all argument-validation cases passed"
