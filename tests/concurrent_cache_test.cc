// Concurrency tests for the shareable client-side substrate:
// ConcurrentCachingDatabase under real multi-threaded load (the TSan CI
// job's main target) plus its accounting invariants, persistence-format
// interop with CachingDatabase, and the thread-safe query accounting of
// TopKInterface itself.

#include <atomic>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "interface/caching_database.h"
#include "interface/concurrent_caching_database.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace hdsky {
namespace interface {
namespace {

constexpr int kThreads = 8;

data::Table MakeTable(int64_t n = 2000) {
  dataset::SyntheticOptions gen;
  gen.num_tuples = n;
  gen.num_attributes = 3;
  gen.domain_size = 50;
  gen.iface = data::InterfaceType::kRQ;
  gen.seed = 77;
  return std::move(dataset::GenerateSynthetic(gen)).value();
}

std::unique_ptr<TopKInterface> MakeBackend(const data::Table* t, int k = 5,
                                           int64_t budget = 0) {
  TopKOptions opts;
  opts.k = k;
  opts.query_budget = budget;
  return std::move(TopKInterface::Create(t, MakeSumRanking(), opts))
      .value();
}

// A deterministic workload of distinct legal range queries.
std::vector<Query> MakeQueries(const data::Schema& schema, int count) {
  std::vector<Query> queries;
  queries.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    Query q(schema.num_attributes());
    q.AddAtMost(i % 3, 5 + (i * 7) % 45);
    if (i % 2 == 0) q.AddAtLeast((i + 1) % 3, (i * 3) % 20);
    queries.push_back(std::move(q));
  }
  return queries;
}

TEST(ConcurrentCachingDatabaseTest, MatchesSerialCacheAnswers) {
  const data::Table t = MakeTable();
  const std::vector<Query> queries = MakeQueries(t.schema(), 64);

  // Serial reference.
  auto serial_backend = MakeBackend(&t);
  CachingDatabase serial(serial_backend.get());
  std::vector<QueryResult> expected;
  for (const Query& q : queries) {
    expected.push_back(std::move(serial.Execute(q)).value());
  }

  // 8 threads, each executing every query against one shared decorator.
  auto backend = MakeBackend(&t);
  ConcurrentCachingDatabase cached(backend.get());
  runtime::ThreadPool pool(kThreads);
  std::atomic<int> mismatches{0};
  runtime::ParallelFor(
      pool, 0, kThreads * static_cast<int64_t>(queries.size()),
      [&](int64_t i) {
        const size_t qi = static_cast<size_t>(i) % queries.size();
        auto r = cached.Execute(queries[qi]);
        if (!r.ok() || r->ids != expected[qi].ids ||
            r->overflow != expected[qi].overflow) {
          mismatches.fetch_add(1);
        }
      });
  EXPECT_EQ(mismatches.load(), 0);

  // Each distinct query reached the backend exactly once (the
  // double-checked miss path), so backend accounting matches serial.
  EXPECT_EQ(cached.misses(), static_cast<int64_t>(queries.size()));
  EXPECT_EQ(cached.hits(),
            static_cast<int64_t>((kThreads - 1) * queries.size()));
  EXPECT_EQ(cached.errors(), 0);
  EXPECT_EQ(cached.size(), static_cast<int64_t>(queries.size()));
  EXPECT_EQ(backend->stats().queries_issued,
            serial_backend->stats().queries_issued);
}

TEST(ConcurrentCachingDatabaseTest, NonSerializedBackendStaysCoherent) {
  // With serialize_backend = false the (thread-safe, static-ranking)
  // backend may see duplicate fetches under races, but every answer
  // must stay correct and accounting must still balance.
  const data::Table t = MakeTable();
  const std::vector<Query> queries = MakeQueries(t.schema(), 32);
  auto backend = MakeBackend(&t);

  ConcurrentCachingDatabase::Options opts;
  opts.serialize_backend = false;
  ConcurrentCachingDatabase cached(backend.get(), opts);

  auto ref_backend = MakeBackend(&t);
  std::vector<QueryResult> expected;
  for (const Query& q : queries) {
    expected.push_back(std::move(ref_backend->Execute(q)).value());
  }

  runtime::ThreadPool pool(kThreads);
  std::atomic<int> mismatches{0};
  const int64_t total = kThreads * static_cast<int64_t>(queries.size());
  runtime::ParallelFor(pool, 0, total, [&](int64_t i) {
    const size_t qi = static_cast<size_t>(i) % queries.size();
    auto r = cached.Execute(queries[qi]);
    if (!r.ok() || r->ids != expected[qi].ids) mismatches.fetch_add(1);
  });
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cached.hits() + cached.misses(), total);
  EXPECT_GE(cached.misses(), static_cast<int64_t>(queries.size()));
  EXPECT_EQ(cached.size(), static_cast<int64_t>(queries.size()));
}

TEST(ConcurrentCachingDatabaseTest, ErrorAccountingUnderBudget) {
  // Mirror of CachingDatabaseTest.AccountsBackendErrorsSeparately, under
  // concurrency: failed fetches count as errors, cache nothing, and
  // hits + misses + errors == accepted Execute calls.
  const data::Table t = MakeTable(200);
  const std::vector<Query> queries = MakeQueries(t.schema(), 16);
  const int64_t budget = 4;
  auto backend = MakeBackend(&t, 5, budget);
  ConcurrentCachingDatabase cached(backend.get());

  runtime::ThreadPool pool(kThreads);
  std::atomic<int64_t> ok_count{0}, exhausted_count{0};
  const int64_t total = kThreads * static_cast<int64_t>(queries.size());
  runtime::ParallelFor(pool, 0, total, [&](int64_t i) {
    const size_t qi = static_cast<size_t>(i) % queries.size();
    auto r = cached.Execute(queries[qi]);
    if (r.ok()) {
      ok_count.fetch_add(1);
    } else if (r.status().IsResourceExhausted()) {
      exhausted_count.fetch_add(1);
    }
  });
  EXPECT_EQ(ok_count.load() + exhausted_count.load(), total);
  EXPECT_EQ(cached.misses(), budget);  // backend answered exactly budget
  EXPECT_EQ(cached.size(), budget);    // only real answers were cached
  EXPECT_EQ(cached.errors(), exhausted_count.load());
  EXPECT_EQ(cached.hits() + cached.misses() + cached.errors(), total);
}

TEST(ConcurrentCachingDatabaseTest,
     RacingBudgetRejectionsKeepAccountingExact) {
  // The sharpest case for TopKInterface's optimistic budget claim/undo:
  // an unserialized concurrent cache racing threads straight into the
  // budget gate, so admissions, undo-and-refuse paths, and cache inserts
  // all interleave. The invariants must hold exactly:
  //   hits + misses + errors == accepted Execute calls, and
  //   the backend admitted precisely `budget` queries.
  const data::Table t = MakeTable(500);
  const int64_t budget = 24;
  auto backend = MakeBackend(&t, 5, budget);
  ConcurrentCachingDatabase::Options opts;
  opts.serialize_backend = false;  // TopKInterface is thread-safe
  ConcurrentCachingDatabase cached(backend.get(), opts);

  runtime::ThreadPool pool(kThreads);
  std::atomic<int64_t> ok_count{0}, exhausted_count{0}, other{0};
  const int64_t total = 512;
  runtime::ParallelFor(pool, 0, total, [&](int64_t i) {
    // Distinct query per index so every call races for a budget unit
    // (no intra-run cache hits except genuine cross-thread ones).
    Query q(t.schema().num_attributes());
    q.AddAtMost(static_cast<int>(i % 3), 1 + i % 47);
    q.AddAtLeast(static_cast<int>((i + 1) % 3), i % 5);
    auto r = cached.Execute(q);
    if (r.ok()) {
      ok_count.fetch_add(1);
    } else if (r.status().IsResourceExhausted()) {
      exhausted_count.fetch_add(1);
    } else {
      other.fetch_add(1);
    }
  });
  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(ok_count.load() + exhausted_count.load(), total);
  EXPECT_EQ(cached.hits() + cached.misses() + cached.errors(), total);
  EXPECT_EQ(cached.errors(), exhausted_count.load());
  // Claim/undo admitted exactly the budget, no unit lost to a race.
  EXPECT_EQ(backend->stats().queries_issued, budget);
  EXPECT_EQ(cached.misses(), budget);
  EXPECT_EQ(backend->RemainingBudget(), 0);
}

TEST(ConcurrentCachingDatabaseTest, SaveLoadInteropWithSerialCache) {
  const data::Table t = MakeTable();
  const std::vector<Query> queries = MakeQueries(t.schema(), 24);

  // Populate the concurrent cache in parallel, save it.
  auto backend = MakeBackend(&t);
  ConcurrentCachingDatabase cached(backend.get());
  runtime::ThreadPool pool(kThreads);
  runtime::ParallelFor(
      pool, 0, static_cast<int64_t>(queries.size()), [&](int64_t i) {
        ASSERT_TRUE(cached.Execute(queries[static_cast<size_t>(i)]).ok());
      });
  std::stringstream saved;
  ASSERT_TRUE(cached.Save(saved).ok());

  // A serial CachingDatabase loads it and replays without any backend.
  auto fresh_backend = MakeBackend(&t);
  CachingDatabase serial(fresh_backend.get());
  ASSERT_TRUE(serial.Load(saved).ok());
  EXPECT_EQ(serial.size(), static_cast<int64_t>(queries.size()));
  for (const Query& q : queries) {
    ASSERT_TRUE(serial.Execute(q).ok());
  }
  EXPECT_EQ(serial.misses(), 0);
  EXPECT_EQ(fresh_backend->stats().queries_issued, 0);

  // And the reverse direction: a serial save loads into the concurrent
  // decorator.
  std::stringstream serial_saved;
  ASSERT_TRUE(serial.Save(serial_saved).ok());
  auto another_backend = MakeBackend(&t);
  ConcurrentCachingDatabase reloaded(another_backend.get());
  ASSERT_TRUE(reloaded.Load(serial_saved).ok());
  EXPECT_EQ(reloaded.size(), static_cast<int64_t>(queries.size()));
  for (const Query& q : queries) {
    ASSERT_TRUE(reloaded.Execute(q).ok());
  }
  EXPECT_EQ(reloaded.misses(), 0);
  EXPECT_EQ(another_backend->stats().queries_issued, 0);
}

TEST(ConcurrentCachingDatabaseTest, RejectsMalformedStreamAtomically) {
  const data::Table t = MakeTable(100);
  auto backend = MakeBackend(&t);
  ConcurrentCachingDatabase cached(backend.get());
  std::stringstream bogus("not-a-cache 3\n");
  EXPECT_TRUE(cached.Load(bogus).IsIOError());
  EXPECT_EQ(cached.size(), 0);
}

TEST(TopKInterfaceConcurrencyTest, CountsEveryQueryUnderContention) {
  // 8 threads hammer one shared TopKInterface (static sum ranking =
  // shareable); the sharded tallies must add up exactly.
  const data::Table t = MakeTable();
  auto iface = MakeBackend(&t);
  const std::vector<Query> queries = MakeQueries(t.schema(), 40);
  runtime::ThreadPool pool(kThreads);
  const int64_t total = kThreads * static_cast<int64_t>(queries.size());
  std::atomic<int64_t> tuples_seen{0};
  runtime::ParallelFor(pool, 0, total, [&](int64_t i) {
    const size_t qi = static_cast<size_t>(i) % queries.size();
    auto r = iface->Execute(queries[qi]);
    ASSERT_TRUE(r.ok());
    tuples_seen.fetch_add(r->size());
  });
  const AccessStats stats = iface->stats();
  EXPECT_EQ(stats.queries_issued, total);
  EXPECT_EQ(stats.tuples_returned, tuples_seen.load());
  EXPECT_EQ(stats.rejected_queries, 0);
}

TEST(TopKInterfaceConcurrencyTest, BudgetIsExactUnderContention) {
  // The optimistic claim/undo admission must admit exactly
  // `query_budget` queries no matter how many threads race for them.
  const data::Table t = MakeTable(500);
  const int64_t budget = 100;
  auto iface = MakeBackend(&t, 5, budget);
  runtime::ThreadPool pool(kThreads);
  std::atomic<int64_t> admitted{0}, refused{0};
  runtime::ParallelFor(pool, 0, 400, [&](int64_t i) {
    // Distinct query per iteration index (vary the bound) so the cache
    // cannot help: every call must face the budget gate.
    Query q(t.schema().num_attributes());
    q.AddAtMost(static_cast<int>(i % 3), 1 + i % 47);
    q.AddAtLeast(static_cast<int>((i + 1) % 3), i % 5);
    auto r = iface->Execute(q);
    if (r.ok()) {
      admitted.fetch_add(1);
    } else if (r.status().IsResourceExhausted()) {
      refused.fetch_add(1);
    }
  });
  EXPECT_EQ(admitted.load(), budget);
  EXPECT_EQ(refused.load(), 400 - budget);
  EXPECT_EQ(iface->stats().queries_issued, budget);
  EXPECT_EQ(iface->RemainingBudget(), 0);
}

}  // namespace
}  // namespace interface
}  // namespace hdsky
