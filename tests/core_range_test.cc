// Correctness and behavioural tests for SQ-DB-SKY and RQ-DB-SKY across
// data distributions, dimensionalities, k values, and ranking functions
// (Theorems 2 and 3: both algorithms discover the complete skyline).

#include <gtest/gtest.h>

#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/synthetic.h"
#include "dataset/worst_case.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::InterfaceType;
using data::Table;
using interface::MakeAdversarialRanking;
using interface::MakeLayeredRandomRanking;
using interface::MakeLexicographicRanking;
using interface::MakeSumRanking;
using testutil::ExpectExactSkyline;
using testutil::ExpectSoundSubset;
using testutil::ExpectWellFormedTrace;
using testutil::MakeInterface;

struct RangeParam {
  dataset::Distribution dist;
  int m;
  int64_t n;
  int64_t domain;
  int k;
  const char* ranking;  // "sum", "lex", "random", "adversarial"
  uint64_t seed;
};

std::shared_ptr<interface::RankingPolicy> MakeRanking(const char* name,
                                                      uint64_t seed) {
  const std::string s = name;
  if (s == "sum") return MakeSumRanking();
  if (s == "lex") return MakeLexicographicRanking({0});
  if (s == "random") return MakeLayeredRandomRanking(seed);
  return MakeAdversarialRanking(seed);
}

Table MakeData(const RangeParam& p, InterfaceType iface) {
  dataset::SyntheticOptions o;
  o.num_tuples = p.n;
  o.num_attributes = p.m;
  o.domain_size = p.domain;
  o.distribution = p.dist;
  o.iface = iface;
  o.seed = p.seed;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

class SqDbSkyCorrectness : public ::testing::TestWithParam<RangeParam> {};

TEST_P(SqDbSkyCorrectness, DiscoversExactSkyline) {
  const RangeParam p = GetParam();
  const Table t = MakeData(p, InterfaceType::kSQ);
  auto iface =
      MakeInterface(&t, MakeRanking(p.ranking, p.seed + 1), p.k);
  auto result = SqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
  ExpectWellFormedTrace(*result);
  // The run's accounting agrees with the interface's.
  EXPECT_EQ(result->query_cost, iface->stats().queries_issued);
}

class RqDbSkyCorrectness : public ::testing::TestWithParam<RangeParam> {};

TEST_P(RqDbSkyCorrectness, DiscoversExactSkyline) {
  const RangeParam p = GetParam();
  const Table t = MakeData(p, InterfaceType::kRQ);
  auto iface =
      MakeInterface(&t, MakeRanking(p.ranking, p.seed + 1), p.k);
  auto result = RqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
  ExpectWellFormedTrace(*result);
}

const RangeParam kRangeSweep[] = {
    {dataset::Distribution::kIndependent, 2, 300, 50, 1, "sum", 1},
    {dataset::Distribution::kIndependent, 3, 500, 100, 1, "sum", 2},
    {dataset::Distribution::kIndependent, 3, 500, 100, 5, "sum", 3},
    {dataset::Distribution::kIndependent, 4, 400, 30, 10, "sum", 4},
    {dataset::Distribution::kIndependent, 5, 300, 12, 3, "sum", 5},
    {dataset::Distribution::kCorrelated, 3, 600, 200, 1, "sum", 6},
    {dataset::Distribution::kAntiCorrelated, 2, 400, 80, 1, "sum", 7},
    {dataset::Distribution::kAntiCorrelated, 3, 300, 40, 5, "sum", 8},
    {dataset::Distribution::kIndependent, 3, 500, 60, 1, "lex", 9},
    {dataset::Distribution::kAntiCorrelated, 3, 250, 30, 2, "lex", 10},
    {dataset::Distribution::kIndependent, 3, 300, 25, 1, "random", 11},
    {dataset::Distribution::kIndependent, 2, 300, 40, 1, "random", 12},
    {dataset::Distribution::kAntiCorrelated, 2, 200, 30, 1, "random", 13},
    {dataset::Distribution::kIndependent, 3, 200, 20, 1, "adversarial",
     14},
    {dataset::Distribution::kIndependent, 2, 250, 35, 2, "adversarial",
     15},
    // Duplicate-heavy tiny domains.
    {dataset::Distribution::kIndependent, 3, 400, 4, 1, "sum", 16},
    {dataset::Distribution::kIndependent, 2, 500, 3, 5, "sum", 17},
    // Single tuple / tiny databases.
    {dataset::Distribution::kIndependent, 3, 1, 10, 1, "sum", 18},
    {dataset::Distribution::kIndependent, 3, 8, 10, 3, "sum", 19},
};

INSTANTIATE_TEST_SUITE_P(Sweep, SqDbSkyCorrectness,
                         ::testing::ValuesIn(kRangeSweep));
INSTANTIATE_TEST_SUITE_P(Sweep, RqDbSkyCorrectness,
                         ::testing::ValuesIn(kRangeSweep));

TEST(SqDbSkyTest, EmptyDatabase) {
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 3, 0, 10, 1, "sum", 1},
      InterfaceType::kSQ);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = SqDbSky(iface.get());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->skyline.empty());
  EXPECT_EQ(result->query_cost, 1);  // the root SELECT *
  EXPECT_TRUE(result->complete);
}

TEST(SqDbSkyTest, RejectsPointOnlyAttribute) {
  dataset::SyntheticOptions o;
  o.num_tuples = 10;
  o.iface = InterfaceType::kPQ;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  EXPECT_TRUE(SqDbSky(iface.get()).status().IsUnsupported());
}

TEST(SqDbSkyTest, WorksOnStrongerRqInterface) {
  // SQ-DB-SKY only needs upper bounds, so an RQ interface suffices.
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 3, 200, 40, 1, "sum", 21},
      InterfaceType::kRQ);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = SqDbSky(iface.get());
  ASSERT_TRUE(result.ok());
  ExpectExactSkyline(*result, t);
}

TEST(RqDbSkyTest, RejectsSqOnlyInterfaceByDefault) {
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 3, 50, 20, 1, "sum", 22},
      InterfaceType::kSQ);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  EXPECT_TRUE(RqDbSky(iface.get()).status().IsUnsupported());
  // The relaxed mode accepts it and still discovers the skyline.
  RqDbSkyOptions relaxed;
  relaxed.require_two_ended = false;
  auto result = RqDbSky(iface.get(), relaxed);
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

TEST(RqDbSkyTest, NeverCostsMoreQueriesOnLargeSkylines) {
  // The RQ early termination matters when |S| is large: an
  // anti-correlated duplicate-free-ish instance.
  dataset::SyntheticOptions o;
  o.num_tuples = 800;
  o.num_attributes = 3;
  o.domain_size = 2000;
  o.distribution = dataset::Distribution::kAntiCorrelated;
  o.iface = InterfaceType::kRQ;
  o.seed = 23;
  const Table t = std::move(dataset::GenerateSynthetic(o)).value();
  auto iface_sq = MakeInterface(&t, MakeSumRanking(), 1);
  auto sq = SqDbSky(iface_sq.get());
  ASSERT_TRUE(sq.ok());
  auto iface_rq = MakeInterface(&t, MakeSumRanking(), 1);
  auto rq = RqDbSky(iface_rq.get());
  ASSERT_TRUE(rq.ok());
  ExpectExactSkyline(*rq, t);
  EXPECT_LE(rq->query_cost, sq->query_cost);
}

TEST(RqDbSkyTest, DisabledEarlyTerminationMatchesSqCost) {
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 3, 300, 50, 1, "sum", 24},
      InterfaceType::kRQ);
  auto iface_a = MakeInterface(&t, MakeSumRanking(), 1);
  RqDbSkyOptions no_early;
  no_early.disable_early_termination = true;
  auto ablated = RqDbSky(iface_a.get(), no_early);
  ASSERT_TRUE(ablated.ok());
  ExpectExactSkyline(*ablated, t);
  auto iface_b = MakeInterface(&t, MakeSumRanking(), 1);
  auto sq = SqDbSky(iface_b.get());
  ASSERT_TRUE(sq.ok());
  // Same tree, same queries: identical cost.
  EXPECT_EQ(ablated->query_cost, sq->query_cost);
}

TEST(AnytimeTest, BudgetedRunsAreSoundPrefixes) {
  const Table t = MakeData(
      {dataset::Distribution::kAntiCorrelated, 3, 500, 500, 1, "sum", 25},
      InterfaceType::kRQ);
  // Full run for reference.
  auto iface_full = MakeInterface(&t, MakeSumRanking(), 1);
  auto full = RqDbSky(iface_full.get());
  ASSERT_TRUE(full.ok());
  for (int64_t budget : {1, 5, 20, 100}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), 1, budget);
    auto partial = RqDbSky(iface.get());
    ASSERT_TRUE(partial.ok()) << partial.status();
    if (budget < full->query_cost) {
      EXPECT_FALSE(partial->complete);
    }
    ExpectSoundSubset(*partial, t);
    EXPECT_LE(partial->query_cost, budget);
    ExpectWellFormedTrace(*partial);
  }
}

TEST(AnytimeTest, MaxQueriesOptionLimitsDiscovery) {
  const Table t = MakeData(
      {dataset::Distribution::kAntiCorrelated, 3, 500, 500, 1, "sum", 26},
      InterfaceType::kSQ);
  SqDbSkyOptions opts;
  opts.common.max_queries = 15;
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = SqDbSky(iface.get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->query_cost, 15);
  ExpectSoundSubset(*result, t);
}

TEST(AnytimeTest, ProgressCallbackFires) {
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 3, 300, 60, 1, "sum", 27},
      InterfaceType::kSQ);
  SqDbSkyOptions opts;
  int calls = 0;
  int64_t last_count = 0;
  opts.common.on_progress = [&](const ProgressPoint& p) {
    ++calls;
    EXPECT_GT(p.skyline_discovered, last_count);
    last_count = p.skyline_discovered;
  };
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = SqDbSky(iface.get(), opts);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(calls, static_cast<int>(result->skyline.size()));
}

TEST(BaseFilterTest, DiscoveryWithinFilteredSubset) {
  // Add a filtering attribute and discover the skyline of one stratum.
  auto schema = data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, InterfaceType::kRQ, 0, 100},
       {"b", data::AttributeKind::kRanking, InterfaceType::kRQ, 0, 100},
       {"cat", data::AttributeKind::kFiltering,
        InterfaceType::kFilterEquality, 0, 2}});
  Table t(std::move(schema).value());
  common::Rng rng(29);
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(t.Append({rng.UniformInt(0, 100), rng.UniformInt(0, 100),
                          rng.UniformInt(0, 2)})
                    .ok());
  }
  auto iface = MakeInterface(&t, MakeSumRanking(), 2);
  RqDbSkyOptions opts;
  interface::Query filter(3);
  filter.AddEquals(2, 1);
  opts.common.base_filter = filter;
  auto result = RqDbSky(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  // Ground truth: skyline of the cat == 1 stratum.
  const Table stratum =
      t.FilterRows([&](data::TupleId r) { return t.value(r, 2) == 1; });
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            skyline::DistinctSkylineValues(stratum));
  // Every discovered tuple really is in the stratum.
  for (const data::Tuple& tup : result->skyline) {
    EXPECT_EQ(tup[2], 1);
  }
}

TEST(CostBoundTest, SqCostAtLeastSkylinePlusOne) {
  // Lower sanity bound: each skyline tuple needs >= 1 query; plus the
  // root. (Not tight; guards against under-counting.)
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 3, 300, 50, 1, "sum", 30},
      InterfaceType::kSQ);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = SqDbSky(iface.get());
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->query_cost,
            static_cast<int64_t>(result->skyline.size()));
}

TEST(CostBoundTest, LargerKReducesSqCost) {
  // Section 3.1: a larger k makes the tree shallower.
  const Table t = MakeData(
      {dataset::Distribution::kAntiCorrelated, 3, 600, 300, 1, "sum", 31},
      InterfaceType::kSQ);
  int64_t prev = -1;
  for (int k : {1, 10, 50}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), k);
    auto result = SqDbSky(iface.get());
    ASSERT_TRUE(result.ok());
    ExpectExactSkyline(*result, t);
    if (prev >= 0) {
      EXPECT_LE(result->query_cost, prev);
    }
    prev = result->query_cost;
  }
}

TEST(WorstCaseInstanceTest, GuardsStillDiscovered) {
  // On the Theorem-1 construction both algorithms stay complete (the
  // bound is about cost, not correctness).
  dataset::WorstCaseOptions o;
  o.num_attributes = 3;
  o.num_skyline = 8;
  o.iface = InterfaceType::kRQ;
  const Table t = std::move(dataset::GenerateSqLowerBound(o)).value();
  auto iface = MakeInterface(&t, MakeAdversarialRanking(32), 1);
  auto result = RqDbSky(iface.get());
  ASSERT_TRUE(result.ok());
  ExpectExactSkyline(*result, t);
  EXPECT_EQ(result->skyline.size(), 11u);  // m guards + s payload
}

TEST(SkipImpossibleChildrenTest, SavesQueriesWithoutLosingTuples) {
  const Table t = MakeData(
      {dataset::Distribution::kIndependent, 4, 400, 10, 1, "sum", 33},
      InterfaceType::kSQ);
  auto iface_a = MakeInterface(&t, MakeSumRanking(), 1);
  auto plain = SqDbSky(iface_a.get());
  ASSERT_TRUE(plain.ok());
  auto iface_b = MakeInterface(&t, MakeSumRanking(), 1);
  SqDbSkyOptions opts;
  opts.skip_impossible_children = true;
  auto skipping = SqDbSky(iface_b.get(), opts);
  ASSERT_TRUE(skipping.ok());
  ExpectExactSkyline(*skipping, t);
  EXPECT_LE(skipping->query_cost, plain->query_cost);
}

}  // namespace
}  // namespace core
}  // namespace hdsky
