// Correctness tests for the point-query family: PQ-2D-SKY (with its
// equation-11 cost), PQ-2DSUB-SKY (through PQ-DB-SKY), and PQ-DB-SKY in
// higher dimensions.

#include <gtest/gtest.h>

#include "analysis/cost_model.h"
#include "core/pq_2d_sky.h"
#include "core/pq_db_sky.h"
#include "dataset/synthetic.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::InterfaceType;
using data::Table;
using data::Value;
using interface::MakeAdversarialRanking;
using interface::MakeLayeredRandomRanking;
using interface::MakeLexicographicRanking;
using interface::MakeSumRanking;
using testutil::ExpectExactSkyline;
using testutil::ExpectSoundSubset;
using testutil::MakeInterface;

Table MakePqData(int m, int64_t n, int64_t domain, uint64_t seed,
                 dataset::Distribution dist =
                     dataset::Distribution::kIndependent) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = m;
  o.domain_size = domain;
  o.distribution = dist;
  o.iface = InterfaceType::kPQ;
  o.seed = seed;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

struct PqParam {
  int m;
  int64_t n;
  int64_t domain;
  int k;
  const char* ranking;
  uint64_t seed;
};

std::shared_ptr<interface::RankingPolicy> MakeRanking(const char* name,
                                                      uint64_t seed) {
  const std::string s = name;
  if (s == "sum") return MakeSumRanking();
  if (s == "lex") return MakeLexicographicRanking({0});
  if (s == "random") return MakeLayeredRandomRanking(seed);
  return MakeAdversarialRanking(seed);
}

class Pq2dCorrectness : public ::testing::TestWithParam<PqParam> {};

TEST_P(Pq2dCorrectness, DiscoversExactSkyline) {
  const PqParam p = GetParam();
  const Table t = MakePqData(2, p.n, p.domain, p.seed);
  auto iface =
      MakeInterface(&t, MakeRanking(p.ranking, p.seed + 1), p.k);
  auto result = Pq2dSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Pq2dCorrectness,
    ::testing::Values(PqParam{2, 200, 20, 1, "sum", 41},
                      PqParam{2, 500, 40, 1, "sum", 42},
                      PqParam{2, 500, 40, 5, "sum", 43},
                      PqParam{2, 100, 10, 1, "lex", 44},
                      PqParam{2, 300, 25, 1, "random", 45},
                      PqParam{2, 300, 25, 3, "adversarial", 46},
                      PqParam{2, 50, 100, 1, "sum", 47},   // sparse
                      PqParam{2, 1000, 6, 1, "sum", 48},   // dense tiny
                      PqParam{2, 1, 10, 1, "sum", 49},
                      PqParam{2, 0, 10, 1, "sum", 50}));

TEST(Pq2dTest, RejectsWrongDimensionality) {
  const Table t = MakePqData(3, 50, 10, 51);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  EXPECT_TRUE(Pq2dSky(iface.get()).status().IsInvalidArgument());
}

TEST(Pq2dTest, UnderflowShortCircuit) {
  // Whole database fits in one answer: exactly one query issued.
  const Table t = MakePqData(2, 5, 50, 52);
  auto iface = MakeInterface(&t, MakeSumRanking(), 10);
  auto result = Pq2dSky(iface.get());
  ASSERT_TRUE(result.ok());
  ExpectExactSkyline(*result, t);
  EXPECT_EQ(result->query_cost, 1);
}

TEST(Pq2dTest, CostTracksEquation11WithK1) {
  // Equation (11) sums, per gap between adjacent skyline points, the
  // cheaper of the two approach directions. The paper's greedy picks its
  // direction per REMAINING RECTANGLE and only queries the bottom/left
  // edge, so it meets the formula exactly when every gap agrees with its
  // enclosing rectangle's direction (the common case) and exceeds it by
  // the difference otherwise. The formula is therefore the instance-
  // optimal lower bound: measured >= formula, and close above it.
  for (uint64_t seed : {60, 61, 62, 63, 64, 65}) {
    const Table t = MakePqData(2, 120, 300, seed);  // sparse: few dups
    auto iface = MakeInterface(&t, MakeSumRanking(), 1);
    auto result = Pq2dSky(iface.get());
    ASSERT_TRUE(result.ok());
    ExpectExactSkyline(*result, t);
    std::vector<std::pair<Value, Value>> pts;
    for (const data::Tuple& s : result->skyline) {
      pts.push_back({s[0], s[1]});
    }
    const int64_t formula =
        analysis::Pq2dCostFormula(pts, 0, 299, 0, 299);
    EXPECT_GE(result->query_cost, formula + 1) << "seed " << seed;
    EXPECT_LE(result->query_cost, 2 * formula + 2) << "seed " << seed;
  }
}

TEST(Pq2dTest, InstanceOptimalityUpperBounds) {
  // Equation-11 corollaries: C <= t1[A2] and C <= t_{|S|}[A1] (plus the
  // root query).
  const Table t = MakePqData(2, 400, 200, 64);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = Pq2dSky(iface.get());
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->skyline.empty());
  std::vector<std::pair<Value, Value>> pts;
  for (const data::Tuple& s : result->skyline) {
    pts.push_back({s[0], s[1]});
  }
  std::sort(pts.begin(), pts.end());
  EXPECT_LE(result->query_cost - 1, pts.front().second - 0 + 1);
  EXPECT_LE(result->query_cost - 1, pts.back().first - 0 + 1);
}

class PqDbCorrectness : public ::testing::TestWithParam<PqParam> {};

TEST_P(PqDbCorrectness, DiscoversExactSkyline) {
  const PqParam p = GetParam();
  const Table t = MakePqData(p.m, p.n, p.domain, p.seed);
  auto iface =
      MakeInterface(&t, MakeRanking(p.ranking, p.seed + 1), p.k);
  auto result = PqDbSky(iface.get());
  ASSERT_TRUE(result.ok()) << result.status();
  ExpectExactSkyline(*result, t);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PqDbCorrectness,
    ::testing::Values(
        PqParam{2, 300, 25, 1, "sum", 70},  // 2D via the plane machinery
        PqParam{3, 300, 10, 1, "sum", 71},
        PqParam{3, 500, 12, 5, "sum", 72},
        PqParam{4, 400, 8, 1, "sum", 73},
        PqParam{4, 400, 8, 10, "sum", 74},
        PqParam{5, 300, 6, 1, "sum", 75},
        PqParam{3, 300, 10, 1, "lex", 76},
        PqParam{3, 250, 9, 1, "random", 77},
        PqParam{3, 250, 9, 2, "adversarial", 78},
        PqParam{3, 40, 15, 1, "sum", 79},   // sparse planes
        PqParam{4, 2000, 5, 1, "sum", 80},  // dense tiny domains
        PqParam{3, 1, 10, 1, "sum", 81},
        PqParam{3, 0, 10, 1, "sum", 82}));

TEST(PqDbTest, CorrelatedAndAntiCorrelated) {
  for (auto dist : {dataset::Distribution::kCorrelated,
                    dataset::Distribution::kAntiCorrelated}) {
    const Table t = MakePqData(3, 400, 10, 83, dist);
    auto iface = MakeInterface(&t, MakeSumRanking(), 1);
    auto result = PqDbSky(iface.get());
    ASSERT_TRUE(result.ok());
    ExpectExactSkyline(*result, t);
  }
}

TEST(PqDbTest, RejectsSingleAttribute) {
  const Table t = MakePqData(1, 50, 10, 84);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  EXPECT_TRUE(PqDbSky(iface.get()).status().IsInvalidArgument());
}

TEST(PqDbTest, PlaneHeuristicPicksLargestDomains) {
  // Mixed domain sizes: attrs 0 and 2 have the largest domains; forcing
  // the worst pair must not change the result, only the cost.
  auto schema = data::Schema::Create(
      {{"big1", data::AttributeKind::kRanking, InterfaceType::kPQ, 0, 30},
       {"small1", data::AttributeKind::kRanking, InterfaceType::kPQ, 0,
        4},
       {"big2", data::AttributeKind::kRanking, InterfaceType::kPQ, 0,
        25}});
  Table t(std::move(schema).value());
  common::Rng rng(85);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(t.Append({rng.UniformInt(0, 30), rng.UniformInt(0, 4),
                          rng.UniformInt(0, 25)})
                    .ok());
  }
  auto iface_a = MakeInterface(&t, MakeSumRanking(), 1);
  auto heuristic = PqDbSky(iface_a.get());
  ASSERT_TRUE(heuristic.ok());
  ExpectExactSkyline(*heuristic, t);

  auto iface_b = MakeInterface(&t, MakeSumRanking(), 1);
  PqDbSkyOptions forced;
  forced.force_ax = 1;  // the small-domain attribute in the plane
  forced.force_ay = 2;
  auto bad_plane = PqDbSky(iface_b.get(), forced);
  ASSERT_TRUE(bad_plane.ok());
  ExpectExactSkyline(*bad_plane, t);
  // The heuristic's multiplicative factor is the small domain, so it
  // should not lose (ties possible on easy instances).
  EXPECT_LE(heuristic->query_cost, bad_plane->query_cost);
}

TEST(PqDbTest, ForcedPlaneValidation) {
  const Table t = MakePqData(3, 50, 10, 86);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  PqDbSkyOptions opts;
  opts.force_ax = 0;
  opts.force_ay = 0;  // same attribute twice
  EXPECT_TRUE(PqDbSky(iface.get(), opts).status().IsInvalidArgument());
}

TEST(PqDbTest, AnytimeBudget) {
  const Table t = MakePqData(3, 600, 12, 87);
  auto full_iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto full = PqDbSky(full_iface.get());
  ASSERT_TRUE(full.ok());
  for (int64_t budget : {1, 10, 50}) {
    auto iface = MakeInterface(&t, MakeSumRanking(), 1, budget);
    auto partial = PqDbSky(iface.get());
    ASSERT_TRUE(partial.ok()) << partial.status();
    ExpectSoundSubset(*partial, t);
    EXPECT_LE(partial->query_cost, budget);
    if (budget < full->query_cost) {
      EXPECT_FALSE(partial->complete);
    }
  }
}

TEST(PqDbTest, UnderflowRootShortCircuit) {
  const Table t = MakePqData(3, 4, 10, 88);
  auto iface = MakeInterface(&t, MakeSumRanking(), 20);
  auto result = PqDbSky(iface.get());
  ASSERT_TRUE(result.ok());
  ExpectExactSkyline(*result, t);
  EXPECT_EQ(result->query_cost, 1);
}

TEST(PqDbTest, FilteredDiscovery) {
  auto schema = data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, InterfaceType::kPQ, 0, 9},
       {"b", data::AttributeKind::kRanking, InterfaceType::kPQ, 0, 9},
       {"g", data::AttributeKind::kFiltering,
        InterfaceType::kFilterEquality, 0, 1}});
  Table t(std::move(schema).value());
  common::Rng rng(89);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(t.Append({rng.UniformInt(0, 9), rng.UniformInt(0, 9),
                          rng.UniformInt(0, 1)})
                    .ok());
  }
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  PqDbSkyOptions opts;
  interface::Query filter(3);
  filter.AddEquals(2, 0);
  opts.common.base_filter = filter;
  auto result = PqDbSky(iface.get(), opts);
  ASSERT_TRUE(result.ok()) << result.status();
  const Table stratum =
      t.FilterRows([&](data::TupleId r) { return t.value(r, 2) == 0; });
  EXPECT_EQ(testutil::DiscoveredValues(*result, t.schema()),
            skyline::DistinctSkylineValues(stratum));
}

TEST(PqDbTest, PaperSection52NegativeExampleInstance) {
  // The Figure 8 construction the paper uses to prove that no
  // deterministic instance-OPTIMAL algorithm exists for 3D: tuples
  // (1,1,1), (2,2,2), (2,0,0), (0,2,0), (0,0,2) under a top-2 interface.
  // Optimality is unattainable, but exact discovery must still hold —
  // the skyline is {(1,1,1), (2,0,0), (0,2,0), (0,0,2)}.
  auto schema = std::move(data::Schema::Create(
      {{"x", data::AttributeKind::kRanking, InterfaceType::kPQ, 0, 2},
       {"y", data::AttributeKind::kRanking, InterfaceType::kPQ, 0, 2},
       {"z", data::AttributeKind::kRanking, InterfaceType::kPQ, 0,
        2}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({1, 1, 1}).ok());
  ASSERT_TRUE(t.Append({2, 2, 2}).ok());
  ASSERT_TRUE(t.Append({2, 0, 0}).ok());
  ASSERT_TRUE(t.Append({0, 2, 0}).ok());
  ASSERT_TRUE(t.Append({0, 0, 2}).ok());
  for (const char* ranking : {"sum", "lex", "random"}) {
    auto iface = MakeInterface(&t, MakeRanking(ranking, 99), 2);
    auto result = PqDbSky(iface.get());
    ASSERT_TRUE(result.ok()) << ranking << ": " << result.status();
    ExpectExactSkyline(*result, t);
    EXPECT_EQ(result->skyline.size(), 4u) << ranking;
  }
}

TEST(PqDbTest, HugeDomainRejected) {
  auto schema = data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, InterfaceType::kPQ, 0,
        int64_t{1} << 23},
       {"b", data::AttributeKind::kRanking, InterfaceType::kPQ, 0,
        int64_t{1} << 23}});
  Table t(std::move(schema).value());
  ASSERT_TRUE(t.Append({1, 1}).ok());
  ASSERT_TRUE(t.Append({2, 2}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  auto result = PqDbSky(iface.get());
  EXPECT_TRUE(result.status().IsUnsupported());
}

}  // namespace
}  // namespace core
}  // namespace hdsky
