// Recovery suite: CRC-framed journal records, torn-tail vs interior
// corruption, atomic checkpoint epochs, the JournalingDatabase replay
// contract (reopening a journal never re-charges a paid query), and
// crash-consistent frontier resume of SQ/RQ/PQ-DB-SKY — a resumed run
// must end with the exact skyline AND the exact anytime trace of the
// uninterrupted run.

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/fs_util.h"
#include "core/pq_db_sky.h"
#include "core/rq_db_sky.h"
#include "core/sq_db_sky.h"
#include "dataset/small_domain.h"
#include "dataset/synthetic.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"
#include "recovery/checkpoint.h"
#include "recovery/federation_state.h"
#include "recovery/journal.h"
#include "recovery/journaling_database.h"
#include "tests/test_util.h"

namespace hdsky {
namespace recovery {
namespace {

using core::DiscoveryOptions;
using core::DiscoveryResult;
using core::DiscoveryRun;
using data::InterfaceType;
using data::Table;
using interface::Query;
using interface::QueryResult;
using testutil::MakeInterface;

std::string TempDir(const std::string& tag) {
  std::string tmpl = (std::filesystem::temp_directory_path() /
                      ("hdsky_recovery_" + tag + ".XXXXXX"))
                         .string();
  char* made = ::mkdtemp(tmpl.data());
  EXPECT_NE(made, nullptr);
  return tmpl;
}

struct ScopedDir {
  explicit ScopedDir(const std::string& tag) : path(TempDir(tag)) {}
  ~ScopedDir() { std::filesystem::remove_all(path); }
  std::string path;
};

// Anti-correlated data keeps the skyline non-trivial: independent
// small-domain tables almost surely contain the all-zero tuple, which
// dominates everything and collapses discovery to one query.
Table MakeSqTable(int64_t n = 400) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = 3;
  o.domain_size = 8;
  o.distribution = dataset::Distribution::kAntiCorrelated;
  o.iface = InterfaceType::kSQ;
  o.seed = 11;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

Table MakeRqTable(int64_t n = 500) {
  dataset::SmallDomainOptions o;
  o.num_tuples = n;
  o.num_attributes = 3;
  o.domain_size = 12;
  o.correlation = 0.0;
  o.iface = InterfaceType::kRQ;
  o.seed = 13;
  return std::move(dataset::GenerateSmallDomain(o)).value();
}

Table MakePqTable(int64_t n = 300) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = 3;
  o.domain_size = 6;
  o.distribution = dataset::Distribution::kAntiCorrelated;
  o.iface = InterfaceType::kPQ;
  o.seed = 17;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

// ---------------------------------------------------------------------------
// CRC + record framing.

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_NE(Crc32c("hdsky"), Crc32c("hdskz"));
}

TEST(JournalRecordTest, HeaderRoundTrip) {
  const std::string payload = EncodeHeaderRecord(4);
  auto width = DecodeHeaderRecord(payload);
  ASSERT_TRUE(width.ok()) << width.status();
  EXPECT_EQ(*width, 4);
  // A non-header record is not a header.
  EXPECT_FALSE(DecodeHeaderRecord(EncodeIntentRecord(1, "xx")).ok());
}

TEST(JournalRecordTest, IntentAndResultRoundTrip) {
  Query q(3);
  q.AddEquals(0, 3);
  q.AddEquals(2, 1);
  const std::string sig = q.Signature();
  const int width = 3;
  ASSERT_EQ(sig.size(), static_cast<size_t>(width) * 16);

  auto intent = DecodeRecord(EncodeIntentRecord(7, sig), width);
  ASSERT_TRUE(intent.ok()) << intent.status();
  EXPECT_EQ(intent->type, RecordType::kIntent);
  EXPECT_EQ(intent->seq, 7u);
  EXPECT_EQ(intent->signature, sig);

  QueryResult result;
  result.ids = {5, 9};
  result.tuples = {{1, 2, 3}, {4, 5, 6}};
  auto rec = DecodeRecord(EncodeResultRecord(8, sig, result), width);
  ASSERT_TRUE(rec.ok()) << rec.status();
  EXPECT_EQ(rec->type, RecordType::kResult);
  EXPECT_EQ(rec->seq, 8u);
  EXPECT_EQ(rec->signature, sig);
  EXPECT_EQ(rec->result.ids, result.ids);
  EXPECT_EQ(rec->result.tuples, result.tuples);

  // A signature of the wrong width is rejected.
  EXPECT_FALSE(DecodeRecord(EncodeIntentRecord(1, sig), width + 1).ok());
}

// ---------------------------------------------------------------------------
// Journal file: write / read / torn tail / interior corruption.

TEST(JournalFileTest, WriteReadRoundTrip) {
  ScopedDir dir("roundtrip");
  const std::string path = dir.path + "/journal-000001";
  JournalWriter::Options opts;
  auto writer = JournalWriter::Create(path, 3, opts);
  ASSERT_TRUE(writer.ok()) << writer.status();
  ASSERT_TRUE((*writer)->Append(EncodeIntentRecord(1, "a")).ok());
  ASSERT_TRUE((*writer)->Append(EncodeIntentRecord(2, "b")).ok());
  writer->reset();

  auto contents = ReadJournalFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_FALSE(contents->torn);
  ASSERT_EQ(contents->payloads.size(), 3u);  // header + 2 records
  auto width = DecodeHeaderRecord(contents->payloads[0]);
  ASSERT_TRUE(width.ok());
  EXPECT_EQ(*width, 3);

  // Creating over an existing journal must refuse.
  EXPECT_FALSE(JournalWriter::Create(path, 3, opts).ok());
}

TEST(JournalFileTest, TornTailIsTruncatedAndAppendContinues) {
  ScopedDir dir("torn");
  const std::string path = dir.path + "/journal-000001";
  JournalWriter::Options opts;
  auto writer = JournalWriter::Create(path, 3, opts);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(EncodeIntentRecord(1, "aa")).ok());
  writer->reset();

  // Simulate a crash mid-append: half of a frame reaches the disk.
  std::string frame;
  AppendFrame(EncodeIntentRecord(2, "bb"), &frame);
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fwrite(frame.data(), 1, frame.size() / 2, f);
    std::fclose(f);
  }

  auto torn = ReadJournalFile(path);
  ASSERT_TRUE(torn.ok()) << torn.status();
  EXPECT_TRUE(torn->torn);
  ASSERT_EQ(torn->payloads.size(), 2u);  // header + first record survive

  // OpenForAppend truncates the tail; the journal is whole again.
  auto reopened = JournalWriter::OpenForAppend(path, torn->valid_bytes, opts);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  ASSERT_TRUE((*reopened)->Append(EncodeIntentRecord(2, "cc")).ok());
  reopened->reset();
  auto healed = ReadJournalFile(path);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->torn);
  EXPECT_EQ(healed->payloads.size(), 3u);
}

TEST(JournalFileTest, InteriorCorruptionRejectsAtomically) {
  ScopedDir dir("interior");
  const std::string path = dir.path + "/journal-000001";
  JournalWriter::Options opts;
  auto writer = JournalWriter::Create(path, 3, opts);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(EncodeIntentRecord(1, "aa")).ok());
  ASSERT_TRUE((*writer)->Append(EncodeIntentRecord(2, "bb")).ok());
  writer->reset();

  // Flip one payload byte of the MIDDLE record: unlike a torn tail there
  // is more data after it, so the whole journal must be rejected.
  const std::string header = EncodeHeaderRecord(3);
  const int64_t offset =
      static_cast<int64_t>(kRecordHeaderBytes + header.size()) +
      static_cast<int64_t>(kRecordHeaderBytes);  // first byte of record 1
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, static_cast<long>(offset), SEEK_SET), 0);
    const char flip = '\xff';
    std::fwrite(&flip, 1, 1, f);
    std::fclose(f);
  }
  auto corrupt = ReadJournalFile(path);
  EXPECT_FALSE(corrupt.ok());
}

TEST(JournalFileTest, EmptyFileYieldsZeroRecords) {
  ScopedDir dir("empty");
  const std::string path = dir.path + "/journal-000001";
  { std::fclose(std::fopen(path.c_str(), "wb")); }
  auto contents = ReadJournalFile(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->payloads.empty());
  EXPECT_EQ(contents->valid_bytes, 0);
}

// ---------------------------------------------------------------------------
// Manifest + snapshot.

TEST(CheckpointTest, ManifestRoundTripAndDamage) {
  ScopedDir dir("manifest");
  EXPECT_TRUE(ReadManifest(dir.path).status().IsNotFound());

  Manifest m;
  m.epoch = 7;
  m.has_snapshot = true;
  ASSERT_TRUE(WriteManifest(dir.path, m).ok());
  auto back = ReadManifest(dir.path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->epoch, 7);
  EXPECT_TRUE(back->has_snapshot);

  // A damaged manifest is an error, never a guess.
  ASSERT_TRUE(
      common::AtomicWriteFile(dir.path + "/" + kManifestFileName, "junk")
          .ok());
  EXPECT_FALSE(ReadManifest(dir.path).ok());
}

TEST(CheckpointTest, SnapshotRoundTripAndDamage) {
  ScopedDir dir("snapshot");
  const std::string path = dir.path + "/snapshot-000002";
  Snapshot snap;
  snap.last_seq = 42;
  snap.state_blob = "opaque-state";
  Query q(3);
  q.AddEquals(1, 2);
  QueryResult r;
  r.ids = {3};
  r.tuples = {{7, 8, 9}};
  snap.entries.push_back({q.Signature(), r});
  ASSERT_TRUE(WriteSnapshot(path, 3, snap).ok());

  auto back = ReadSnapshot(path, 3);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->last_seq, 42u);
  EXPECT_EQ(back->state_blob, "opaque-state");
  ASSERT_EQ(back->entries.size(), 1u);
  EXPECT_EQ(back->entries[0].signature, q.Signature());
  EXPECT_EQ(back->entries[0].result.ids, r.ids);

  // Width mismatch and bit damage both reject the whole snapshot.
  EXPECT_FALSE(ReadSnapshot(path, 4).ok());
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 16, SEEK_SET), 0);
    const char flip = '\xff';
    std::fwrite(&flip, 1, 1, f);
    std::fclose(f);
  }
  EXPECT_FALSE(ReadSnapshot(path, 3).ok());
}

TEST(CheckpointTest, SessionStateRoundTrip) {
  SessionState state;
  state.algorithm = "rq";
  state.run_state = std::string("run\0state", 9);
  state.frontier = "frontier-bytes";
  auto back = DecodeSessionState(EncodeSessionState(state));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->algorithm, "rq");
  EXPECT_EQ(back->run_state, state.run_state);
  EXPECT_EQ(back->frontier, "frontier-bytes");

  // The empty blob is the canonical "replay from the start" state.
  auto empty = DecodeSessionState("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->algorithm.empty());
}

TEST(CheckpointTest, RemoveOtherEpochFilesKeepsLiveEpoch) {
  ScopedDir dir("epochs");
  for (const char* name : {"journal-000001", "snapshot-000001",
                           "journal-000002", "snapshot-000002"}) {
    ASSERT_TRUE(common::AtomicWriteFile(dir.path + "/" + name, "x").ok());
  }
  RemoveOtherEpochFiles(dir.path, 2);
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/journal-000001"));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/snapshot-000001"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/journal-000002"));
  EXPECT_TRUE(std::filesystem::exists(dir.path + "/snapshot-000002"));
}

// ---------------------------------------------------------------------------
// JournalingDatabase: the replay contract.

/// Counts backend executions and remembers the last query signature, so
/// tests can prove a replayed query never reaches the backend.
class CountingDatabase : public interface::HiddenDatabase {
 public:
  explicit CountingDatabase(interface::HiddenDatabase* backend)
      : backend_(backend) {}

  using interface::HiddenDatabase::Execute;
  common::Result<QueryResult> Execute(const Query& q) override {
    ++executes_;
    last_signature_ = q.Signature();
    return backend_->Execute(q);
  }
  const data::Schema& schema() const override { return backend_->schema(); }
  int k() const override { return backend_->k(); }
  common::Status ValidateQuery(const Query& q) const override {
    return backend_->ValidateQuery(q);
  }

  int64_t executes() const { return executes_; }
  const std::string& last_signature() const { return last_signature_; }

 private:
  interface::HiddenDatabase* backend_;
  int64_t executes_ = 0;
  std::string last_signature_;
};

TEST(JournalingDatabaseTest, ReopenReplaysWithoutRecharging) {
  const Table t = MakeSqTable();
  auto iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  CountingDatabase counting(iface.get());
  ScopedDir dir("replay");

  std::vector<Query> queries;
  for (data::Value v = 0; v < 4; ++v) {
    Query q(3);
    q.AddEquals(0, v);
    queries.push_back(q);
  }

  JournalingDatabase::Options opts;
  std::vector<QueryResult> first_answers;
  {
    auto journal = JournalingDatabase::Open(&counting, dir.path, opts);
    ASSERT_TRUE(journal.ok()) << journal.status();
    EXPECT_FALSE((*journal)->resumed());
    for (const Query& q : queries) {
      auto r = (*journal)->Execute(q);
      ASSERT_TRUE(r.ok()) << r.status();
      first_answers.push_back(*r);
    }
    EXPECT_EQ((*journal)->stats().paid, 4);
    EXPECT_EQ(counting.executes(), 4);
  }

  // Reopen: every journaled query replays locally; the backend is never
  // consulted for them.
  auto journal = JournalingDatabase::Open(&counting, dir.path, opts);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_TRUE((*journal)->resumed());
  EXPECT_EQ((*journal)->entries(), 4);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = (*journal)->Execute(queries[i]);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_EQ(r->ids, first_answers[i].ids);
    EXPECT_EQ(r->tuples, first_answers[i].tuples);
  }
  EXPECT_EQ((*journal)->stats().replayed, 4);
  EXPECT_EQ((*journal)->stats().paid, 0);
  EXPECT_EQ(counting.executes(), 4);  // unchanged
}

TEST(JournalingDatabaseTest, CheckpointCompactsAndSurvivesReopen) {
  const Table t = MakeSqTable();
  auto iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  CountingDatabase counting(iface.get());
  ScopedDir dir("compact");

  JournalingDatabase::Options opts;
  opts.checkpoint_every = 2;
  opts.auto_checkpoint = true;
  {
    auto journal = JournalingDatabase::Open(&counting, dir.path, opts);
    ASSERT_TRUE(journal.ok()) << journal.status();
    for (data::Value v = 0; v < 5; ++v) {
      Query q(3);
      q.AddEquals(0, v);
      ASSERT_TRUE((*journal)->Execute(q).ok());
    }
    // checkpoint_every=2 with auto_checkpoint: at least one compaction
    // happened mid-run.
    EXPECT_GT((*journal)->epoch(), 1);
  }
  auto journal = JournalingDatabase::Open(&counting, dir.path, opts);
  ASSERT_TRUE(journal.ok()) << journal.status();
  EXPECT_EQ((*journal)->entries(), 5);
  for (data::Value v = 0; v < 5; ++v) {
    Query q(3);
    q.AddEquals(0, v);
    ASSERT_TRUE((*journal)->Execute(q).ok());
  }
  EXPECT_EQ(counting.executes(), 5);
}

TEST(JournalingDatabaseTest, DanglingIntentResendsUnderSameSeq) {
  const Table t = MakeSqTable();
  auto iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  CountingDatabase counting(iface.get());
  ScopedDir dir("dangling");

  Query paid(3);
  paid.AddEquals(0, 1);
  Query in_flight(3);
  in_flight.AddEquals(0, 2);

  JournalingDatabase::Options opts;
  {
    auto journal = JournalingDatabase::Open(&counting, dir.path, opts);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->Execute(paid).ok());
  }
  // Simulate a crash between paying and journaling the answer: append a
  // bare intent for the in-flight query.
  {
    auto contents = ReadJournalFile(dir.path + "/journal-000001");
    ASSERT_TRUE(contents.ok());
    auto writer = JournalWriter::OpenForAppend(
        dir.path + "/journal-000001", contents->valid_bytes, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append(EncodeIntentRecord(2, in_flight.Signature())).ok());
  }

  auto journal = JournalingDatabase::Open(&counting, dir.path, opts);
  ASSERT_TRUE(journal.ok()) << journal.status();
  ASSERT_TRUE((*journal)->pending_intent_signature().has_value());
  EXPECT_EQ(*(*journal)->pending_intent_signature(), in_flight.Signature());
  // The re-send must go out under the journaled sequence number.
  EXPECT_EQ((*journal)->next_wire_seq(), 2u);

  // A replayed query still answers locally with the intent outstanding.
  ASSERT_TRUE((*journal)->Execute(paid).ok());
  EXPECT_EQ((*journal)->stats().replayed, 1);

  // Re-executing the in-flight query consumes the pending intent.
  ASSERT_TRUE((*journal)->Execute(in_flight).ok());
  EXPECT_FALSE((*journal)->pending_intent_signature().has_value());
  EXPECT_EQ((*journal)->next_wire_seq(), 3u);

  // A DIFFERENT fresh query while an intent dangles means the resumed
  // run diverged from its journal — a hard error, not silent corruption.
  {
    auto contents = ReadJournalFile(dir.path + "/journal-000001");
    ASSERT_TRUE(contents.ok());
    auto writer = JournalWriter::OpenForAppend(
        dir.path + "/journal-000001", contents->valid_bytes, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append(EncodeIntentRecord(3, in_flight.Signature())).ok());
  }
  auto diverged = JournalingDatabase::Open(&counting, dir.path, opts);
  ASSERT_TRUE(diverged.ok()) << diverged.status();
  Query other(3);
  other.AddEquals(0, 3);
  EXPECT_FALSE((*diverged)->Execute(other).ok());
}

/// Backend whose Execute fails while `dead` is set — a site that is down
/// exactly when the coordinator probes it.
class RevivableDatabase : public interface::HiddenDatabase {
 public:
  explicit RevivableDatabase(interface::HiddenDatabase* backend)
      : backend_(backend) {}
  using interface::HiddenDatabase::Execute;
  common::Result<QueryResult> Execute(const Query& q) override {
    if (dead) return common::Status::Unavailable("backend dark");
    ++executes_;
    return backend_->Execute(q);
  }
  const data::Schema& schema() const override { return backend_->schema(); }
  int k() const override { return backend_->k(); }

  bool dead = false;
  int64_t executes() const { return executes_; }

 private:
  interface::HiddenDatabase* backend_;
  int64_t executes_ = 0;
};

TEST(JournalingDatabaseTest, ResolvePendingSettlesUnderOriginalSeq) {
  const Table t = MakeSqTable();
  auto iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  RevivableDatabase flaky(iface.get());
  ScopedDir dir("resolve");

  Query paid(3);
  paid.AddEquals(0, 1);
  Query in_flight(3);
  in_flight.AddEquals(0, 2);

  JournalingDatabase::Options opts;
  {
    auto journal = JournalingDatabase::Open(&flaky, dir.path, opts);
    ASSERT_TRUE(journal.ok()) << journal.status();
    ASSERT_TRUE((*journal)->Execute(paid).ok());
  }
  // Crash between paying and journaling the answer: a bare intent.
  {
    auto contents = ReadJournalFile(dir.path + "/journal-000001");
    ASSERT_TRUE(contents.ok());
    auto writer = JournalWriter::OpenForAppend(
        dir.path + "/journal-000001", contents->valid_bytes, {});
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        (*writer)->Append(EncodeIntentRecord(2, in_flight.Signature())).ok());
  }

  auto journal = JournalingDatabase::Open(&flaky, dir.path, opts);
  ASSERT_TRUE(journal.ok()) << journal.status();
  ASSERT_TRUE((*journal)->pending_intent_signature().has_value());

  // While the backend is still dark, resolving fails and the intent
  // stays: the next attempt retries under the SAME wire sequence, so the
  // server can still replay-or-charge exactly once.
  flaky.dead = true;
  EXPECT_FALSE((*journal)->ResolvePending().ok());
  EXPECT_TRUE((*journal)->pending_intent_signature().has_value());
  EXPECT_EQ((*journal)->next_wire_seq(), 2u);

  // Once the backend answers, the intent settles under seq 2 — the query
  // is reconstructed from its journaled signature, nothing else needed.
  flaky.dead = false;
  ASSERT_TRUE((*journal)->ResolvePending().ok());
  EXPECT_FALSE((*journal)->pending_intent_signature().has_value());
  EXPECT_EQ((*journal)->next_wire_seq(), 3u);
  EXPECT_EQ(flaky.executes(), 2);  // the paid query + the settled intent

  // Resolving with nothing pending is a no-op.
  ASSERT_TRUE((*journal)->ResolvePending().ok());
  EXPECT_EQ(flaky.executes(), 2);
}

TEST(JournalingDatabaseTest, WidthMismatchIsRejected) {
  const Table t = MakeSqTable();
  auto iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  ScopedDir dir("width");
  {
    auto journal = JournalingDatabase::Open(iface.get(), dir.path, {});
    ASSERT_TRUE(journal.ok());
  }
  // A backend with a different arity must not adopt this journal.
  dataset::SmallDomainOptions o;
  o.num_tuples = 50;
  o.num_attributes = 4;
  o.domain_size = 4;
  o.iface = InterfaceType::kSQ;
  const Table other = std::move(dataset::GenerateSmallDomain(o)).value();
  auto other_iface = MakeInterface(&other, interface::MakeSumRanking(), 5);
  EXPECT_FALSE(JournalingDatabase::Open(other_iface.get(), dir.path, {}).ok());
}

// ---------------------------------------------------------------------------
// FederationSessionState: the coordinator's round checkpoint.

FederationSessionState PopulatedFederationState() {
  FederationSessionState s;
  s.mode = "union";
  s.algorithm = "auto";
  s.rounds = 7;
  s.total_remaining = 123;
  s.backends.resize(2);

  FederatedBackendState& a = s.backends[0];
  a.name = "alpha:4000";
  a.algorithm = "rq";
  a.has_resume = true;
  // Binary-hostile blobs: embedded NULs and high bytes must survive.
  a.run_state = std::string("run\0state\xff", 10);
  a.frontier = std::string("\0\x01\x02stack", 8);
  a.cand_ids = {3, 9};
  a.cand_tuples = {{1, 2}, {4, 0}};
  a.prev_confirmed = 5;
  a.prev_paid = 40;
  a.last_round_paid = 12;
  a.last_round_new = 2;
  a.rounds = 6;
  a.paid = 52;
  a.pruned = 8;
  a.health = 1;  // degraded, mid-backoff
  a.probe_attempts = 2;
  a.next_probe_round = 11;
  a.recoveries = 1;
  a.observed_ids = {3, 9, 14};
  a.observed_tuples = {{1, 2}, {4, 0}, {5, 5}};

  FederatedBackendState& b = s.backends[1];
  b.name = "beta:4001";
  b.algorithm = "sq";
  b.complete = true;
  b.failed = true;
  b.backend_exhausted = true;
  b.error = "backend unreachable: gone";
  b.paid = 17;
  return s;
}

TEST(FederationStateTest, EncodeDecodeRoundTrip) {
  const FederationSessionState s = PopulatedFederationState();
  const std::string blob = EncodeFederationState(s);
  auto decoded = DecodeFederationState(blob);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  // Re-encode equality covers every field at once...
  EXPECT_EQ(EncodeFederationState(*decoded), blob);
  // ...and the fields a resumed coordinator steers by are spot-checked.
  EXPECT_EQ(decoded->rounds, 7);
  EXPECT_EQ(decoded->total_remaining, 123);
  ASSERT_EQ(decoded->backends.size(), 2u);
  EXPECT_EQ(decoded->backends[0].frontier, s.backends[0].frontier);
  EXPECT_EQ(decoded->backends[0].run_state, s.backends[0].run_state);
  EXPECT_EQ(decoded->backends[0].cand_tuples, s.backends[0].cand_tuples);
  EXPECT_EQ(decoded->backends[0].observed_tuples,
            s.backends[0].observed_tuples);
  EXPECT_EQ(decoded->backends[0].health, 1);
  EXPECT_EQ(decoded->backends[0].next_probe_round, 11);
  EXPECT_TRUE(decoded->backends[1].failed);
  EXPECT_EQ(decoded->backends[1].error, "backend unreachable: gone");
}

TEST(FederationStateTest, SaveLoadAndDamageRejected) {
  ScopedDir dir("fedstate");
  // No checkpoint yet: NotFound, the fresh-session signal.
  EXPECT_TRUE(LoadFederationState(dir.path).status().IsNotFound());

  const FederationSessionState s = PopulatedFederationState();
  ASSERT_TRUE(SaveFederationState(dir.path, s).ok());
  auto loaded = LoadFederationState(dir.path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(EncodeFederationState(*loaded), EncodeFederationState(s));

  // Atomic replace: a second checkpoint fully supersedes the first.
  FederationSessionState later = s;
  later.rounds = 8;
  ASSERT_TRUE(SaveFederationState(dir.path, later).ok());
  auto reloaded = LoadFederationState(dir.path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->rounds, 8);

  // A torn STATE (truncated tail) is rejected whole, never partially
  // adopted.
  const std::string state_path =
      dir.path + "/" + kFederationStateFileName;
  const auto full_size = std::filesystem::file_size(state_path);
  std::filesystem::resize_file(state_path, full_size - 3);
  EXPECT_FALSE(LoadFederationState(dir.path).ok());

  // Trailing garbage after the frame is damage too, not slack.
  ASSERT_TRUE(SaveFederationState(dir.path, later).ok());
  {
    std::FILE* f = std::fopen(state_path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("xx", f);
    std::fclose(f);
  }
  EXPECT_FALSE(LoadFederationState(dir.path).ok());
}

// ---------------------------------------------------------------------------
// DiscoveryRun / SkylineCollector state round trips.

TEST(RunStateTest, CollectorRoundTrip) {
  core::SkylineCollector a({0, 1, 2});
  a.AddConfirmed(4, {1, 2, 3});
  a.AddConfirmed(9, {3, 1, 0});
  std::string blob;
  a.SaveState(&blob);

  core::SkylineCollector b({0, 1, 2});
  ASSERT_TRUE(b.RestoreState(blob).ok());
  EXPECT_EQ(b.ids(), a.ids());
  EXPECT_EQ(b.tuples(), a.tuples());
  // Restored confirmations still prune: a dominated tuple is rejected.
  EXPECT_FALSE(b.Observe(11, {2, 3, 4}));
  // Restore is only legal on an empty collector.
  EXPECT_FALSE(b.RestoreState(blob).ok());
}

TEST(RunStateTest, DiscoveryRunRoundTripPreservesTrace) {
  const Table t = MakeRqTable();
  auto iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  DiscoveryOptions opts;
  DiscoveryRun run(iface.get(), opts);
  Query q(3);
  auto r = run.Execute(q);
  ASSERT_TRUE(r.ok());
  for (int i = 0; i < r->size(); ++i) {
    run.Observe(r->ids[static_cast<size_t>(i)],
                r->tuples[static_cast<size_t>(i)]);
  }
  std::string blob;
  run.SaveState(&blob);

  auto iface2 = MakeInterface(&t, interface::MakeSumRanking(), 5);
  DiscoveryRun resumed(iface2.get(), opts);
  ASSERT_TRUE(resumed.RestoreState(blob).ok());
  EXPECT_EQ(resumed.queries_issued(), run.queries_issued());
  DiscoveryResult a = run.Finish();
  DiscoveryResult b = resumed.Finish();
  EXPECT_EQ(a.skyline_ids, b.skyline_ids);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (size_t i = 0; i < a.trace.size(); ++i) {
    EXPECT_EQ(a.trace[i].queries_issued, b.trace[i].queries_issued);
    EXPECT_EQ(a.trace[i].skyline_discovered, b.trace[i].skyline_discovered);
  }
}

// ---------------------------------------------------------------------------
// Frontier resume: interrupt a run mid-flight at a checkpoint, resume
// from the captured state, demand the uninterrupted skyline AND trace.

struct CapturedCheckpoint {
  std::string run_state;
  std::string frontier;
};

/// Runs `algo` three ways: uninterrupted (the reference), interrupted
/// after `stop_after` queries with every checkpoint captured, and resumed
/// from the last captured checkpoint. The resumed run must finish with
/// the reference's exact skyline ids and exact anytime trace.
template <typename Algo>
void ExpectFrontierResumeEquivalence(const Table& t, Algo&& algo,
                                     int64_t stop_after) {
  auto ref_iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  DiscoveryOptions plain;
  auto reference = algo(ref_iface.get(), plain);
  ASSERT_TRUE(reference.ok()) << reference.status();
  ASSERT_TRUE(reference->complete);

  ASSERT_LT(stop_after, reference->query_cost)
      << "stop_after must interrupt before the run finishes";

  // Interrupted run: capture (run state, frontier) at every consistent
  // boundary, stop via the cooperative interrupt after stop_after backend
  // queries.
  std::optional<CapturedCheckpoint> checkpoint;
  auto int_iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  CountingDatabase counting(int_iface.get());
  DiscoveryOptions interrupted;
  interrupted.interrupt = [&] { return counting.executes() >= stop_after; };
  interrupted.on_checkpoint = [&](DiscoveryRun& run,
                                  const core::FrontierSaver& save) {
    CapturedCheckpoint cp;
    run.SaveState(&cp.run_state);
    save(&cp.frontier);
    checkpoint = std::move(cp);
  };
  auto partial = algo(&counting, interrupted);
  ASSERT_TRUE(partial.ok()) << partial.status();
  ASSERT_FALSE(partial->complete);
  ASSERT_TRUE(checkpoint.has_value())
      << "run never reached a checkpoint boundary; lower stop_after";

  // Resumed run: fresh interface, fast-forward from the checkpoint.
  auto res_iface = MakeInterface(&t, interface::MakeSumRanking(), 5);
  DiscoveryOptions resume;
  resume.resume_run_state = checkpoint->run_state;
  resume.resume_frontier = checkpoint->frontier;
  auto resumed = algo(res_iface.get(), resume);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->complete);
  EXPECT_EQ(resumed->skyline_ids, reference->skyline_ids);
  ASSERT_EQ(resumed->trace.size(), reference->trace.size());
  for (size_t i = 0; i < reference->trace.size(); ++i) {
    EXPECT_EQ(resumed->trace[i].queries_issued,
              reference->trace[i].queries_issued);
    EXPECT_EQ(resumed->trace[i].skyline_discovered,
              reference->trace[i].skyline_discovered);
  }
}

TEST(FrontierResumeTest, SqDbSky) {
  const Table t = MakeSqTable();
  ExpectFrontierResumeEquivalence(
      t,
      [](interface::HiddenDatabase* iface, const DiscoveryOptions& common) {
        core::SqDbSkyOptions opts;
        opts.common = common;
        return core::SqDbSky(iface, opts);
      },
      8);
}

TEST(FrontierResumeTest, RqDbSky) {
  const Table t = MakeRqTable();
  ExpectFrontierResumeEquivalence(
      t,
      [](interface::HiddenDatabase* iface, const DiscoveryOptions& common) {
        core::RqDbSkyOptions opts;
        opts.common = common;
        return core::RqDbSky(iface, opts);
      },
      6);
}

TEST(FrontierResumeTest, PqDbSky) {
  const Table t = MakePqTable();
  ExpectFrontierResumeEquivalence(
      t,
      [](interface::HiddenDatabase* iface, const DiscoveryOptions& common) {
        core::PqDbSkyOptions opts;
        opts.common = common;
        return core::PqDbSky(iface, opts);
      },
      10);
}

}  // namespace
}  // namespace recovery
}  // namespace hdsky
