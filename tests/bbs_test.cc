// Tests for the R-tree and the branch-and-bound skyline (BBS): structure
// invariants, agreement with the scan-based operators, the progressive
// emission order, and the K-skyband generalization.

#include <functional>
#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "dataset/synthetic.h"
#include "skyline/bbs.h"
#include "skyline/compute.h"
#include "skyline/skyband.h"

namespace hdsky {
namespace skyline {
namespace {

using data::Table;
using data::TupleId;
using data::Value;

Table MakeData(int64_t n, int m, int64_t domain, uint64_t seed,
               dataset::Distribution dist =
                   dataset::Distribution::kIndependent) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = m;
  o.domain_size = domain;
  o.distribution = dist;
  o.seed = seed;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

TEST(RTreeTest, BuildValidation) {
  const Table t = MakeData(10, 2, 10, 1);
  EXPECT_FALSE(RTree::Build(nullptr).ok());
  EXPECT_FALSE(RTree::Build(&t, 1).ok());
  EXPECT_TRUE(RTree::Build(&t).ok());
}

TEST(RTreeTest, EmptyTable) {
  const Table t = MakeData(0, 2, 10, 2);
  auto tree = RTree::Build(&t);
  ASSERT_TRUE(tree.ok());
  EXPECT_TRUE(tree->empty());
}

TEST(RTreeTest, StructureInvariants) {
  const Table t = MakeData(500, 3, 40, 3);
  const RTree tree = std::move(RTree::Build(&t, 8)).value();
  ASSERT_FALSE(tree.empty());
  // Every row appears in exactly one leaf, and every node's MBR contains
  // its subtree.
  std::set<TupleId> seen;
  std::function<void(int32_t, const Mbr*)> walk = [&](int32_t id,
                                                      const Mbr* outer) {
    const RTree::Node& node = tree.node(id);
    if (outer != nullptr) {
      for (size_t d = 0; d < node.mbr.min.size(); ++d) {
        EXPECT_GE(node.mbr.min[d], outer->min[d]);
        EXPECT_LE(node.mbr.max[d], outer->max[d]);
      }
    }
    if (node.is_leaf()) {
      EXPECT_LE(node.rows.size(), 8u);
      for (TupleId row : node.rows) {
        EXPECT_TRUE(seen.insert(row).second);
        for (size_t d = 0; d < node.mbr.min.size(); ++d) {
          const Value v = t.value(
              row, tree.ranking_attrs()[d]);
          EXPECT_GE(v, node.mbr.min[d]);
          EXPECT_LE(v, node.mbr.max[d]);
        }
      }
    } else {
      EXPECT_LE(node.children.size(), 8u);
      for (int32_t child : node.children) walk(child, &node.mbr);
    }
  };
  walk(tree.root(), nullptr);
  EXPECT_EQ(seen.size(), 500u);
}

struct BbsParam {
  dataset::Distribution dist;
  int m;
  int64_t n;
  int64_t domain;
  uint64_t seed;
};

class BbsAgreement : public ::testing::TestWithParam<BbsParam> {};

TEST_P(BbsAgreement, MatchesScanAlgorithms) {
  const BbsParam p = GetParam();
  const Table t = MakeData(p.n, p.m, p.domain, p.seed, p.dist);
  auto bbs = SkylineBBS(t);
  ASSERT_TRUE(bbs.ok());
  EXPECT_EQ(*bbs, SkylineSFS(t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BbsAgreement,
    ::testing::Values(
        BbsParam{dataset::Distribution::kIndependent, 2, 300, 50, 10},
        BbsParam{dataset::Distribution::kIndependent, 3, 500, 25, 11},
        BbsParam{dataset::Distribution::kIndependent, 5, 300, 10, 12},
        BbsParam{dataset::Distribution::kCorrelated, 3, 400, 60, 13},
        BbsParam{dataset::Distribution::kAntiCorrelated, 3, 400, 40, 14},
        BbsParam{dataset::Distribution::kAntiCorrelated, 4, 250, 15, 15},
        BbsParam{dataset::Distribution::kIndependent, 2, 400, 4, 16},
        BbsParam{dataset::Distribution::kIndependent, 3, 1, 10, 17}));

TEST(BbsTest, ProgressiveEmissionInMonotoneScoreOrder) {
  const Table t =
      MakeData(600, 3, 50, 20, dataset::Distribution::kAntiCorrelated);
  const RTree tree = std::move(RTree::Build(&t)).value();
  std::vector<TupleId> order;
  auto result = SkylineBBS(
      tree, [&](TupleId row) { order.push_back(row); });
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(order.size(), result->size());
  // Emission follows ascending sum-of-values (mindist), the progressive
  // guarantee that makes BBS an online algorithm.
  auto score = [&](TupleId row) {
    int64_t s = 0;
    for (int a : tree.ranking_attrs()) s += t.value(row, a);
    return s;
  };
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(score(order[i - 1]), score(order[i])) << i;
  }
}

TEST(BbsTest, SkybandMatchesGroundTruth) {
  const Table t =
      MakeData(300, 3, 20, 21, dataset::Distribution::kAntiCorrelated);
  const RTree tree = std::move(RTree::Build(&t)).value();
  for (int band : {1, 2, 3, 5}) {
    auto got = SkybandBBS(tree, band);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, KSkyband(t, band)) << "band " << band;
  }
  EXPECT_FALSE(SkybandBBS(tree, 0).ok());
}

TEST(BbsTest, DuplicateValuesAllEmitted) {
  auto schema = std::move(data::Schema::Create(
      {{"a", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        10},
       {"b", data::AttributeKind::kRanking, data::InterfaceType::kRQ, 0,
        10}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({2, 2}).ok());
  ASSERT_TRUE(t.Append({2, 2}).ok());
  ASSERT_TRUE(t.Append({5, 5}).ok());
  auto bbs = SkylineBBS(t);
  ASSERT_TRUE(bbs.ok());
  EXPECT_EQ(*bbs, (std::vector<TupleId>{0, 1}));
}

}  // namespace
}  // namespace skyline
}  // namespace hdsky
