// Tests for analysis/: the cost-model formulas of Sections 3.2/4.2/5.1,
// including the paper's stated special cases and the recursion-vs-closed-
// form agreement, plus an empirical check of the average-case model
// against measured SQ-DB-SKY costs under the layered-random ranking.

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/cost_model.h"
#include "core/sq_db_sky.h"
#include "dataset/small_domain.h"
#include "tests/test_util.h"

namespace hdsky {
namespace analysis {
namespace {

TEST(CostModelTest, BaseCases) {
  // E(C_0) = 1; E(C_1) = 1 + m (the SELECT * plus m empty branches).
  for (int m : {2, 4, 8}) {
    EXPECT_DOUBLE_EQ(ExpectedSqCost(m, 0), 1.0);
    EXPECT_DOUBLE_EQ(ExpectedSqCost(m, 1), 1.0 + m);
  }
}

TEST(CostModelTest, PaperSpecialCaseMEquals2) {
  // "For example, when m = 2, we have E(Cs) = 2s" — modulo the paper's
  // dropped root query, the exact value is 2s + 1 (see cost_model.cc).
  for (int64_t s : {1, 2, 5, 10, 50}) {
    EXPECT_NEAR(ExpectedSqCost(2, s),
                2.0 * static_cast<double>(s) + 1.0, 1e-6)
        << s;
    EXPECT_NEAR(ExpectedSqCostClosedForm(2, s),
                2.0 * static_cast<double>(s) + 1.0, 1e-6)
        << s;
  }
}

TEST(CostModelTest, RecursionMatchesClosedForm) {
  for (int m : {2, 3, 4, 8}) {
    for (int64_t s : {1, 2, 5, 10, 19}) {
      const double rec = ExpectedSqCost(m, s);
      const double closed = ExpectedSqCostClosedForm(m, s);
      EXPECT_NEAR(rec / closed, 1.0, 1e-9) << "m=" << m << " s=" << s;
    }
  }
}

TEST(CostModelTest, AverageBelowUpperBoundBelowWorstCase) {
  // The Figure 4 ordering: E(Cs) <= (e + e*s/m)^m << m * s^{m+1}.
  for (int m : {4, 8}) {
    for (int64_t s : {3, 7, 13, 19}) {
      const double avg = ExpectedSqCost(m, s);
      const double upper = AverageCaseUpperBound(m, s);
      const double worst = WorstCaseSqBound(m, s);
      EXPECT_LE(avg, upper) << "m=" << m << " s=" << s;
      EXPECT_LT(upper, worst) << "m=" << m << " s=" << s;
    }
  }
}

TEST(CostModelTest, WorstCaseGrowth) {
  EXPECT_DOUBLE_EQ(WorstCaseSqBound(3, 2), 3.0 * 16.0);  // m * s^{m+1}
  // RQ bound caps at n.
  EXPECT_DOUBLE_EQ(WorstCaseRqBound(3, 100, 500), 3.0 * 500.0);
  EXPECT_DOUBLE_EQ(WorstCaseRqBound(3, 2, 500), 3.0 * 16.0);
}

TEST(CostModelTest, Pq2dFormula) {
  // Two points on a 10x10 grid: (2, 7) and (6, 3).
  // Gaps: corner(0,9)->(2,7): min(2,2)=2; (2,7)->(6,3): min(4,4)=4;
  // (6,3)->corner(9,0): min(3,3)=3. Total 9.
  EXPECT_EQ(Pq2dCostFormula({{2, 7}, {6, 3}}, 0, 9, 0, 9), 9);
  // Empty skyline: single corner-to-corner gap.
  EXPECT_EQ(Pq2dCostFormula({}, 0, 9, 0, 9), 9);
  // Unsorted input is sorted internally.
  EXPECT_EQ(Pq2dCostFormula({{6, 3}, {2, 7}}, 0, 9, 0, 9), 9);
}

TEST(CostModelTest, MeasuredSqCostNearAverageModel) {
  // Under the layered-random ranking (the exact model of §3.2), the
  // measured SQ-DB-SKY cost averaged over seeds should sit within a
  // modest factor of E(C_|S|) — and below the (e + e|S|/m)^m bound.
  dataset::SmallDomainOptions gen;
  gen.num_tuples = 400;
  gen.num_attributes = 3;
  gen.domain_size = 16;
  gen.seed = 160;
  const data::Table t =
      std::move(dataset::GenerateWithSkylineSize(gen, 12, 6)).value();
  const int64_t s = static_cast<int64_t>(
      skyline::DistinctSkylineValues(t).size());
  ASSERT_GE(s, 2);
  double total = 0;
  const int trials = 12;
  for (int i = 0; i < trials; ++i) {
    auto iface = testutil::MakeInterface(
        &t, interface::MakeLayeredRandomRanking(500 + i), 1);
    auto result = core::SqDbSky(iface.get());
    ASSERT_TRUE(result.ok());
    total += static_cast<double>(result->query_cost);
  }
  const double measured = total / trials;
  const double expected = ExpectedSqCost(3, s);
  // Duplicates and sampling noise blur the match; a 3x factor band
  // separates the average-case regime from the worst case by orders of
  // magnitude anyway.
  EXPECT_LT(measured, 3.0 * expected);
  EXPECT_GT(measured, expected / 3.0);
}

}  // namespace
}  // namespace analysis
}  // namespace hdsky
