// Tests for the runtime/ execution layer: ThreadPool lifecycle and
// draining, ParallelFor coverage/determinism, and the HDSKY_THREADS
// policy. These are the suites the TSan CI job leans on, so they
// deliberately drive real concurrency (8 workers, contended counters).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/parallel_for.h"
#include "runtime/thread_pool.h"

namespace hdsky {
namespace runtime {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    }
    // No WaitIdle: the destructor must drain the queue before joining.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleReturnsWithEmptyQueue) {
  ThreadPool pool(4);
  pool.WaitIdle();  // no tasks: must not hang
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1);
  // Reusable after idling.
  pool.Submit([&count] { count.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  // With 8 workers and 8 tasks that all wait for each other, the only
  // way to finish is genuine parallelism (a serial pool would deadlock
  // the barrier; the generous timeout turns that into a test failure).
  constexpr int kTasks = 8;
  ThreadPool pool(kTasks);
  std::atomic<int> arrived{0};
  std::atomic<bool> timed_out{false};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] {
      arrived.fetch_add(1);
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      while (arrived.load() < kTasks) {
        if (std::chrono::steady_clock::now() > deadline) {
          timed_out.store(true);
          break;
        }
        std::this_thread::yield();
      }
    });
  }
  pool.WaitIdle();
  EXPECT_FALSE(timed_out.load());
  EXPECT_EQ(arrived.load(), kTasks);
}

TEST(ThreadPoolTest, TrySubmitAdmitsUpToLimitAndShedsBeyond) {
  ThreadPool pool(1);
  // Block the single worker so queued tasks cannot drain.
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  // Wait for the blocker to be dequeued (pending counts it as in-flight).
  while (pool.pending() != 1) std::this_thread::yield();

  std::atomic<int> ran{0};
  int admitted = 0;
  for (int i = 0; i < 10; ++i) {
    std::function<void()> task = [&ran] { ran.fetch_add(1); };
    if (pool.TrySubmit(task, /*max_pending=*/4)) ++admitted;
  }
  // 1 blocker in flight + 3 queued reach the limit of 4.
  EXPECT_EQ(admitted, 3);
  EXPECT_EQ(pool.pending(), 4);

  release.store(true);
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 3);
  EXPECT_EQ(pool.pending(), 0);

  // After draining, admission opens up again.
  std::function<void()> task = [&ran] { ran.fetch_add(1); };
  EXPECT_TRUE(pool.TrySubmit(task, /*max_pending=*/4));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 4);
}

TEST(ThreadPoolTest, TrySubmitUnlimitedWhenMaxPendingNonPositive) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    std::function<void()> task = [&ran] { ran.fetch_add(1); };
    EXPECT_TRUE(pool.TrySubmit(task, /*max_pending=*/0));
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPoolTest, TrySubmitLeavesTaskIntactOnRejection) {
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  while (pool.pending() != 1) std::this_thread::yield();

  std::atomic<int> ran{0};
  std::function<void()> task = [&ran] { ran.fetch_add(1); };
  EXPECT_FALSE(pool.TrySubmit(task, /*max_pending=*/1));
  ASSERT_TRUE(static_cast<bool>(task));  // rejection must not consume it
  release.store(true);
  pool.WaitIdle();
  EXPECT_TRUE(pool.TrySubmit(task, /*max_pending=*/1));
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> seen(kN);
  ParallelFor(pool, 0, kN, [&seen](int64_t i) {
    seen[static_cast<size_t>(i)].fetch_add(1);
  });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(seen[static_cast<size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  ParallelFor(pool, 5, 5, [&calls](int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(pool, 7, 8, [&calls](int64_t i) {
    ++calls;
    EXPECT_EQ(i, 7);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, SlotPerIndexIsDeterministicAcrossPoolSizes) {
  // The determinism contract: when every index writes only its own
  // slot, the result is identical for every pool size.
  constexpr int64_t kN = 257;
  auto run = [&](int threads) {
    std::vector<int64_t> out(kN);
    ParallelFor(threads, 0, kN,
                [&out](int64_t i) { out[static_cast<size_t>(i)] = i * i; });
    return out;
  };
  const std::vector<int64_t> serial = run(1);
  EXPECT_EQ(run(4), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ParallelForTest, UsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> ids;
  ParallelFor(pool, 0, 1000, [&](int64_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    std::lock_guard<std::mutex> lock(mu);
    ids.insert(std::this_thread::get_id());
  });
  // Dynamic scheduling across 1000 slow iterations must engage more
  // than one worker.
  EXPECT_GT(ids.size(), 1u);
}

TEST(ThreadPolicyTest, HardwareThreadCountIsPositive) {
  EXPECT_GE(HardwareThreadCount(), 1);
}

TEST(ThreadPolicyTest, EnvThreadCountParsesOverrides) {
  // EnvThreadCount reads the live environment; exercise the parse paths
  // through setenv. (Tests run single-process, so this is race-free.)
  unsetenv("HDSKY_THREADS");
  EXPECT_EQ(EnvThreadCount(), 1);
  setenv("HDSKY_THREADS", "6", 1);
  EXPECT_EQ(EnvThreadCount(), 6);
  setenv("HDSKY_THREADS", "0", 1);
  EXPECT_EQ(EnvThreadCount(), HardwareThreadCount());
  setenv("HDSKY_THREADS", "-3", 1);
  EXPECT_EQ(EnvThreadCount(), 1);
  setenv("HDSKY_THREADS", "100000", 1);
  EXPECT_EQ(EnvThreadCount(), 256);
  unsetenv("HDSKY_THREADS");
}

}  // namespace
}  // namespace runtime
}  // namespace hdsky
