// Differential tests of the query-execution paths behind TopKInterface.
//
// The interface promises that every execution strategy — the vectorized
// column-at-a-time engine, the k-d index walk, and the naive
// row-at-a-time rank-order scan — returns *bit-identical* QueryResults
// and identical AccessStats for any legal query. These tests drive all
// configurations with the same randomized query streams (including NULL
// values, empty intervals, point predicates, and out-of-domain bounds)
// and assert byte equality, plus that kd_abort_floor / kd_index_threshold
// settings never change answers, only speed.

#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/schema.h"
#include "data/table.h"
#include "dataset/synthetic.h"
#include "interface/exec/kernels.h"
#include "interface/ranking.h"
#include "interface/top_k_interface.h"

namespace {

using namespace hdsky;
using interface::AccessStats;
using interface::Query;
using interface::QueryResult;
using interface::TopKInterface;
using interface::TopKOptions;

std::unique_ptr<TopKInterface> Make(const data::Table* table,
                                    const TopKOptions& opts) {
  auto r = TopKInterface::Create(table, interface::MakeSumRanking(), opts);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TopKOptions Opts(int k, bool vectorized, int64_t kd_threshold,
                 int64_t abort_floor = 256) {
  TopKOptions o;
  o.k = k;
  o.vectorized_scan = vectorized;
  o.kd_index_threshold = kd_threshold;
  o.kd_abort_floor = abort_floor;
  return o;
}

data::Table SyntheticTable(int64_t n, int m, int64_t domain,
                           dataset::Distribution dist, uint64_t seed) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = m;
  o.domain_size = domain;
  o.distribution = dist;
  o.seed = seed;
  auto r = dataset::GenerateSynthetic(o);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

/// A table where a fraction of cells is NULL — the vectorized kernels
/// must exclude NULL from every constrained attribute exactly like
/// Interval::Contains does.
data::Table NullLacedTable(int64_t n, int m, data::Value domain_max,
                           double null_frac, uint64_t seed) {
  std::vector<data::AttributeSpec> specs(static_cast<size_t>(m));
  for (int a = 0; a < m; ++a) {
    specs[static_cast<size_t>(a)].name = "A" + std::to_string(a);
    specs[static_cast<size_t>(a)].domain_min = 0;
    specs[static_cast<size_t>(a)].domain_max = domain_max;
  }
  auto schema = data::Schema::Create(std::move(specs));
  EXPECT_TRUE(schema.ok()) << schema.status();
  data::Table t(std::move(schema).value());
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<data::Value> val(0, domain_max);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int64_t r = 0; r < n; ++r) {
    data::Tuple tup(static_cast<size_t>(m));
    for (int a = 0; a < m; ++a) {
      tup[static_cast<size_t>(a)] =
          coin(rng) < null_frac ? data::kNullValue : val(rng);
    }
    EXPECT_TRUE(t.Append(tup).ok());
  }
  return t;
}

/// Random conjunctive query mixing broad, selective, point, inverted
/// (empty), and out-of-domain predicates. All attributes are RQ, so
/// every generated query is interface-legal.
Query RandomQuery(std::mt19937_64& rng, const data::Schema& schema) {
  Query q(schema.num_attributes());
  std::uniform_int_distribution<int> kind(0, 9);
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const data::AttributeSpec& spec = schema.attribute(a);
    std::uniform_int_distribution<data::Value> val(spec.domain_min - 3,
                                                   spec.domain_max + 3);
    switch (kind(rng)) {
      case 0:
      case 1:
        q.AddAtMost(a, val(rng));
        break;
      case 2:
        q.AddAtLeast(a, val(rng));
        break;
      case 3:  // two-ended; inverted about half the time -> empty
        q.AddAtLeast(a, val(rng)).AddAtMost(a, val(rng));
        break;
      case 4:
        q.AddEquals(a, val(rng));
        break;
      case 5:  // wholly out of domain
        q.AddAtLeast(a, spec.domain_max + 10);
        break;
      case 6:
        q.AddGreaterThan(a, val(rng));
        break;
      default:
        break;  // unconstrained
    }
  }
  return q;
}

/// Handcrafted edge cases over a schema with domains [0, D].
std::vector<Query> EdgeQueries(const data::Schema& schema) {
  const int m = schema.num_attributes();
  const data::Value dmax = schema.attribute(0).domain_max;
  std::vector<Query> qs;
  qs.push_back(Query(m));                                 // SELECT *
  qs.push_back(Query(m).AddAtLeast(0, 0));                // full domain
  qs.push_back(Query(m).AddAtLeast(0, 5).AddAtMost(0, 4));  // inverted
  qs.push_back(Query(m).AddEquals(0, 0));                 // point at min
  qs.push_back(Query(m).AddEquals(0, dmax));              // point at max
  qs.push_back(Query(m).AddEquals(0, dmax + 50));         // out of domain
  qs.push_back(Query(m).AddAtMost(0, -7));                // out of domain
  Query all(m);  // every attribute constrained
  for (int a = 0; a < m; ++a) all.AddAtMost(a, dmax / 2);
  qs.push_back(all);
  return qs;
}

void ExpectSameStats(const AccessStats& a, const AccessStats& b,
                     const std::string& label) {
  EXPECT_EQ(a.queries_issued, b.queries_issued) << label;
  EXPECT_EQ(a.tuples_returned, b.tuples_returned) << label;
  EXPECT_EQ(a.overflowed_queries, b.overflowed_queries) << label;
  EXPECT_EQ(a.empty_queries, b.empty_queries) << label;
  EXPECT_EQ(a.rejected_queries, b.rejected_queries) << label;
}

/// Runs the same query stream through every interface and asserts the
/// answers are byte-identical to the first (reference) interface's.
void RunDifferential(const data::Table& table,
                     std::vector<std::unique_ptr<TopKInterface>>& ifaces,
                     int num_random, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Query> queries = EdgeQueries(table.schema());
  for (int i = 0; i < num_random; ++i) {
    queries.push_back(RandomQuery(rng, table.schema()));
  }
  for (const Query& q : queries) {
    auto ref = ifaces[0]->Execute(q);
    ASSERT_TRUE(ref.ok()) << ref.status();
    for (size_t c = 1; c < ifaces.size(); ++c) {
      auto got = ifaces[c]->Execute(q);
      ASSERT_TRUE(got.ok()) << got.status();
      const std::string label =
          "config " + std::to_string(c) + " query " +
          q.ToString(table.schema());
      EXPECT_EQ(ref.value().ids, got.value().ids) << label;
      EXPECT_EQ(ref.value().tuples, got.value().tuples) << label;
      EXPECT_EQ(ref.value().overflow, got.value().overflow) << label;
    }
  }
  for (size_t c = 1; c < ifaces.size(); ++c) {
    ExpectSameStats(ifaces[0]->stats(), ifaces[c]->stats(),
                    "config " + std::to_string(c));
  }
}

/// The four path combinations: vectorized on/off x k-d index forced/off.
/// Config 0 (both fast paths disabled) is the naive reference.
std::vector<std::unique_ptr<TopKInterface>> AllPaths(
    const data::Table& table, int k) {
  std::vector<std::unique_ptr<TopKInterface>> ifaces;
  ifaces.push_back(Make(&table, Opts(k, false, -1)));  // naive scan
  ifaces.push_back(Make(&table, Opts(k, false, 0)));   // kd + naive
  ifaces.push_back(Make(&table, Opts(k, true, -1)));   // engine only
  ifaces.push_back(Make(&table, Opts(k, true, 0)));    // kd + engine
  return ifaces;
}

TEST(ExecDifferentialTest, IndependentData) {
  const data::Table t = SyntheticTable(
      3000, 4, 50, dataset::Distribution::kIndependent, 7001);
  auto ifaces = AllPaths(t, 5);
  RunDifferential(t, ifaces, 400, 901);
}

TEST(ExecDifferentialTest, AntiCorrelatedData) {
  const data::Table t = SyntheticTable(
      2000, 3, 1000, dataset::Distribution::kAntiCorrelated, 7002);
  auto ifaces = AllPaths(t, 10);
  RunDifferential(t, ifaces, 300, 902);
}

TEST(ExecDifferentialTest, NullLacedData) {
  const data::Table t = NullLacedTable(1500, 3, 49, 0.2, 7003);
  auto ifaces = AllPaths(t, 5);
  RunDifferential(t, ifaces, 400, 903);
}

TEST(ExecDifferentialTest, NullsNeverMatchConstrainedAttributes) {
  const data::Table t = NullLacedTable(400, 2, 19, 0.5, 7004);
  auto ifaces = AllPaths(t, 400);  // k > n: full match set comes back
  // Constrained over the whole domain: every non-NULL value matches, no
  // NULL may.
  Query q(2);
  q.AddAtLeast(0, 0);
  for (auto& iface : ifaces) {
    auto r = iface->Execute(q);
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_FALSE(r.value().overflow);
    for (const data::Tuple& tup : r.value().tuples) {
      EXPECT_NE(tup[0], data::kNullValue);
    }
  }
}

TEST(ExecDifferentialTest, AbortFloorAndThresholdNeverChangeAnswers) {
  const data::Table t = SyntheticTable(
      2500, 4, 40, dataset::Distribution::kIndependent, 7005);
  std::vector<std::unique_ptr<TopKInterface>> ifaces;
  ifaces.push_back(Make(&t, Opts(5, false, -1)));  // naive reference
  ifaces.push_back(Make(&t, Opts(5, true, 0, 0)));  // floor 0 -> 2k+2
  ifaces.push_back(Make(&t, Opts(5, true, 0, 7)));
  ifaces.push_back(Make(&t, Opts(5, true, 0, 1 << 20)));  // never aborts
  ifaces.push_back(Make(&t, Opts(5, true, 10000)));  // threshold > n
  ifaces.push_back(Make(&t, Opts(5, true, 2500)));   // threshold == n
  RunDifferential(t, ifaces, 300, 904);
}

TEST(ExecDifferentialTest, RejectsNegativeAbortFloor) {
  const data::Table t = SyntheticTable(
      50, 2, 10, dataset::Distribution::kIndependent, 7006);
  TopKOptions o = Opts(1, true, 0, -1);
  auto r = TopKInterface::Create(&t, interface::MakeSumRanking(), o);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument()) << r.status();
}

TEST(ExecKernelTest, CollectBoundsClampsBelowNull) {
  Query q(2);
  q.AddAtLeast(0, 5);  // upper end unconstrained
  std::vector<interface::exec::AttrBound> bounds;
  ASSERT_TRUE(interface::exec::CollectBounds(q, &bounds));
  ASSERT_EQ(bounds.size(), 1u);
  EXPECT_EQ(bounds[0].attr, 0);
  EXPECT_EQ(bounds[0].lo, 5);
  EXPECT_EQ(bounds[0].hi, data::kNullValue - 1);
  EXPECT_FALSE(interface::exec::InBound(data::kNullValue, bounds[0]));
  EXPECT_TRUE(interface::exec::InBound(5, bounds[0]));
  EXPECT_FALSE(interface::exec::InBound(4, bounds[0]));
}

TEST(ExecKernelTest, CollectBoundsRejectsUnsatisfiablePoint) {
  Query q(1);
  q.AddEquals(0, data::kNullValue);  // no stored value can match
  std::vector<interface::exec::AttrBound> bounds;
  EXPECT_FALSE(interface::exec::CollectBounds(q, &bounds));
}

TEST(ExecKernelTest, SelectAndRefineMatchScalarSemantics) {
  std::mt19937_64 rng(31337);
  std::uniform_int_distribution<data::Value> val(-5, 25);
  std::vector<data::Value> a(777), b(777);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = val(rng);
    b[i] = val(rng);
  }
  const interface::exec::AttrBound ba{0, 0, 9};
  const interface::exec::AttrBound bb{1, 3, 20};
  std::vector<int32_t> sel(a.size());
  int32_t n = interface::exec::SelectInterval(
      a.data(), static_cast<int32_t>(a.size()), ba, sel.data());
  n = interface::exec::RefineInterval(b.data(), bb, sel.data(), n);
  std::vector<int32_t> expected;
  for (int32_t i = 0; i < static_cast<int32_t>(a.size()); ++i) {
    if (a[static_cast<size_t>(i)] >= 0 && a[static_cast<size_t>(i)] <= 9 &&
        b[static_cast<size_t>(i)] >= 3 && b[static_cast<size_t>(i)] <= 20) {
      expected.push_back(i);
    }
  }
  ASSERT_EQ(static_cast<size_t>(n), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(sel[i], expected[i]);
  }
}

}  // namespace
