// Direct unit tests for PQ-2DSUB-SKY: plane-restricted discovery, the
// empty-region pruning from covering observations, the dominated-region
// pruning from previously confirmed tuples, and the pending-tuple
// resolution path.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "core/pq_2dsub_sky.h"
#include "dataset/synthetic.h"
#include "skyline/compute.h"
#include "skyline/dominance.h"
#include "tests/test_util.h"

namespace hdsky {
namespace core {
namespace {

using data::Table;
using data::Tuple;
using data::TupleId;
using data::Value;
using interface::MakeSumRanking;
using interface::Query;
using testutil::MakeInterface;

// 3-attribute PQ table; the plane spans attrs {0, 1}, attr 2 is fixed.
Table MakeTable(int64_t n, Value domain, uint64_t seed) {
  dataset::SyntheticOptions o;
  o.num_tuples = n;
  o.num_attributes = 3;
  o.domain_size = domain;
  o.iface = data::InterfaceType::kPQ;
  o.seed = seed;
  return std::move(dataset::GenerateSynthetic(o)).value();
}

// Ground truth: distinct-value global-skyline tuples with attr2 == vc.
std::vector<Tuple> PlaneSkyline(const Table& t, Value vc) {
  std::vector<Tuple> out;
  for (const Tuple& v : skyline::DistinctSkylineValues(t)) {
    if (v[2] == vc) out.push_back(v);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(Pq2dSubTest, PlanesInDominanceOrderRecoverFullSkyline) {
  const Table t = MakeTable(400, 9, 500);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  DiscoveryOptions opts;
  DiscoveryRun run(iface.get(), opts);

  // Root observation (as PQ-DB-SKY would seed it).
  auto root = run.Execute(run.MakeBaseQuery());
  ASSERT_TRUE(root.ok());
  run.Observe(root->ids[0], root->tuples[0]);
  std::vector<CoveringObservation> obs;
  obs.push_back({run.MakeBaseQuery(), root->tuples[0]});

  for (Value vc = 0; vc <= 8; ++vc) {  // ascending = dominance order
    PlaneSpec plane;
    plane.ax = 0;
    plane.ay = 1;
    plane.other_attrs = {2};
    plane.plane_values = {vc};
    ASSERT_TRUE(Pq2dSubSky(&run, plane, obs).ok());
    // After each plane, every global-skyline tuple living in it must be
    // confirmed (its dominators' planes came first).
    const auto truth = PlaneSkyline(t, vc);
    std::vector<Tuple> got;
    for (const Tuple& s : run.collector().tuples()) {
      if (s[2] == vc) {
        got.push_back({s[0], s[1], s[2]});
      }
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, truth) << "plane " << vc;
  }
}

TEST(Pq2dSubTest, DominatedPlaneCostsNothing) {
  // Confirm a tuple that dominates an entire later plane: processing
  // that plane must issue zero queries.
  auto schema = std::move(data::Schema::Create(
      {{"x", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        5},
       {"y", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        5},
       {"z", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        2}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({0, 0, 0}).ok());  // dominates everything
  ASSERT_TRUE(t.Append({3, 3, 2}).ok());
  ASSERT_TRUE(t.Append({4, 2, 1}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  DiscoveryOptions opts;
  DiscoveryRun run(iface.get(), opts);
  run.AddConfirmed(0, t.GetTuple(0));

  PlaneSpec plane;
  plane.ax = 0;
  plane.ay = 1;
  plane.other_attrs = {2};
  plane.plane_values = {1};
  const int64_t before = iface->stats().queries_issued;
  ASSERT_TRUE(Pq2dSubSky(&run, plane, {}).ok());
  EXPECT_EQ(iface->stats().queries_issued, before);  // fully pruned
  EXPECT_EQ(run.collector().size(), 1);
}

TEST(Pq2dSubTest, ObservationPrunesEmptyRegion) {
  // The root observation's top-1 at (2, 2, 0) proves cells dominating it
  // empty; the same plane then needs fewer queries than without it.
  auto schema = std::move(data::Schema::Create(
      {{"x", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        7},
       {"y", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        7},
       {"z", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        1}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({2, 2, 0}).ok());
  ASSERT_TRUE(t.Append({0, 6, 0}).ok());
  ASSERT_TRUE(t.Append({6, 0, 0}).ok());
  ASSERT_TRUE(t.Append({5, 5, 1}).ok());  // dominated

  auto run_once = [&](bool with_obs) -> int64_t {
    auto iface = MakeInterface(&t, MakeSumRanking(), 1);
    DiscoveryOptions opts;
    DiscoveryRun run(iface.get(), opts);
    std::vector<CoveringObservation> obs;
    if (with_obs) {
      auto root = run.Execute(run.MakeBaseQuery());
      EXPECT_TRUE(root.ok());
      run.Observe(root->ids[0], root->tuples[0]);
      obs.push_back({run.MakeBaseQuery(), root->tuples[0]});
    }
    PlaneSpec plane;
    plane.ax = 0;
    plane.ay = 1;
    plane.other_attrs = {2};
    plane.plane_values = {0};
    EXPECT_TRUE(Pq2dSubSky(&run, plane, obs).ok());
    // All three z = 0 tuples are skyline and must be found.
    EXPECT_EQ(run.collector().size(), 3);
    return iface->stats().queries_issued;
  };
  const int64_t without = run_once(false);
  const int64_t with = run_once(true);  // includes the 1 root query
  EXPECT_LT(with, without + 1);
}

TEST(Pq2dSubTest, BudgetExhaustionReturnsCleanly) {
  // Sparse wide plane: discovery genuinely needs many 1D queries, so a
  // budget of 2 must die mid-plane.
  const Table t = MakeTable(100, 30, 501);
  auto iface = MakeInterface(&t, MakeSumRanking(), 1, /*budget=*/2);
  DiscoveryOptions opts;
  DiscoveryRun run(iface.get(), opts);
  PlaneSpec plane;
  plane.ax = 0;
  plane.ay = 1;
  plane.other_attrs = {2};
  plane.plane_values = {0};
  EXPECT_TRUE(Pq2dSubSky(&run, plane, {}).ok());
  EXPECT_TRUE(run.exhausted());
  // Whatever was confirmed is sound.
  const auto truth = skyline::DistinctSkylineValues(t);
  for (const Tuple& s : run.collector().tuples()) {
    Tuple v{s[0], s[1], s[2]};
    EXPECT_TRUE(std::binary_search(truth.begin(), truth.end(), v));
  }
}

TEST(Pq2dSubTest, RejectsGiantPlaneDomains) {
  auto schema = std::move(data::Schema::Create(
      {{"x", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        (int64_t{1} << 23)},
       {"y", data::AttributeKind::kRanking, data::InterfaceType::kPQ, 0,
        3}})).value();
  Table t(std::move(schema));
  ASSERT_TRUE(t.Append({1, 1}).ok());
  auto iface = MakeInterface(&t, MakeSumRanking(), 1);
  DiscoveryOptions opts;
  DiscoveryRun run(iface.get(), opts);
  PlaneSpec plane;
  plane.ax = 0;
  plane.ay = 1;
  EXPECT_TRUE(Pq2dSubSky(&run, plane, {}).IsUnsupported());
}

}  // namespace
}  // namespace core
}  // namespace hdsky
