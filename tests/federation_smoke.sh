#!/bin/sh
# Federation loopback smoke: three hdsky_serve backends (one behind a
# fault-injecting hdsky_proxy), one federated union discovery.
#
# Demands:
#  * the federated union skyline equals the merged single-site ground
#    truth exactly (at ranking-value granularity — the only granularity
#    a top-k interface can reveal),
#  * the federated run pays strictly fewer backend queries than the
#    three sequential discoveries it replaces, with a non-zero number
#    answered free from the shared dominance index,
#  * scripts/compare_bench.py accepts the run's --federation-json,
#  * killing one backend mid-run degrades gracefully: the remaining
#    backends finish, the exit code stays 0, and the output is flagged
#    "coverage: PARTIAL",
#  * chaos, coordinator: kill -KILL the coordinator at a round barrier
#    mid-run; the resumed session produces byte-identical CSV and JSON
#    and the backends are charged exactly as many queries as one
#    uninterrupted run — zero replays on the wire, and
#  * chaos, backend: a deterministic proxy blackout kills a backend
#    mid-run and revives it; re-probing reintegrates it (PARTIAL never
#    reported, "recovered" in the report), the skyline equals the
#    no-fault ground truth, and each survivor paid exactly its solo
#    traversal cost — no duplicate queries on healthy backends.
#
# Usage: federation_smoke.sh <hdsky_serve> <hdsky_discover> <hdsky_proxy>
#                            <compare_bench.py>
set -u

SERVE=$1
DISCOVER=$2
PROXY=$3
COMPARE=$4
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hdsky_fed.XXXXXX") || exit 1
PIDS=""

cleanup() {
  for pid in $PIDS; do
    kill -TERM "$pid" 2>/dev/null
  done
  for pid in $PIDS; do
    wait "$pid" 2>/dev/null
  done
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# wait_listen <out-file> <pid>: blocks until the "listening on" line
# appears, then prints the port.
wait_listen() {
  out=$1
  pid=$2
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening on" "$out" 2>/dev/null; then
      sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$out"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    i=$((i + 1))
    sleep 0.1
  done
  return 1
}

# start_serve <name> <n> <seed>: bluenile backend on an ephemeral port;
# sets PORT.
start_serve() {
  name=$1
  n=$2
  seed=$3
  "$SERVE" --demo bluenile --n "$n" --k 10 --seed "$seed" --port 0 \
    >"$WORK/$name.out" 2>"$WORK/$name.err" &
  pid=$!
  PIDS="$PIDS $pid"
  eval "${name}_PID=$pid"
  PORT=$(wait_listen "$WORK/$name.out" "$pid") \
    || fail "$name did not come up: $(cat "$WORK/$name.err")"
}

N=2000

start_serve s1 $N 1
P1=$PORT
start_serve s2 $N 2
P2=$PORT
start_serve s3 $N 3
P3=$PORT

# Backend 3 sits behind an adversarial proxy: spurious BUSY bounces and
# small delays, all recoverable by the client's retry machinery.
"$PROXY" --upstream "127.0.0.1:$P3" --port 0 --seed 11 \
  --rate-limit 0.05 --delay 0.02 --delay-ms 5 \
  >"$WORK/proxy.out" 2>"$WORK/proxy.err" &
PROXY_PID=$!
PIDS="$PIDS $PROXY_PID"
PP=$(wait_listen "$WORK/proxy.out" "$PROXY_PID") \
  || fail "proxy did not come up: $(cat "$WORK/proxy.err")"

# --- Ground truth: dump each site's table, merge, discover locally. ----
for s in 1 2 3; do
  "$DISCOVER" --demo bluenile --n $N --seed $s \
    --dump-data "$WORK/site$s.csv" >/dev/null 2>&1 \
    || fail "dump-data failed for seed $s"
done
head -1 "$WORK/site1.csv" >"$WORK/merged.csv"
for s in 1 2 3; do
  tail -n +2 "$WORK/site$s.csv" >>"$WORK/merged.csv"
done
"$DISCOVER" --data "$WORK/merged.csv" --algorithm rq \
  --out "$WORK/truth.csv" >/dev/null 2>&1 \
  || fail "ground-truth discovery over merged CSV failed"

# --- Sequential baseline: three independent remote discoveries. -------
# Per-site costs are kept: the chaos jobs below assert a survivor of a
# backend outage pays exactly its solo traversal cost, nothing twice.
SEQ=0
site=0
for ep in "127.0.0.1:$P1" "127.0.0.1:$P2" "127.0.0.1:$PP"; do
  site=$((site + 1))
  "$DISCOVER" --connect "$ep" --algorithm rq >"$WORK/seq.txt" 2>/dev/null \
    || fail "sequential discovery against $ep failed"
  q=$(sed -n 's/^queries : \([0-9][0-9]*\).*/\1/p' "$WORK/seq.txt")
  [ -n "$q" ] || fail "no query count in sequential output for $ep"
  eval "S$site=$q"
  SEQ=$((SEQ + q))
done

# --- Federated union over all three (one behind the proxy). -----------
"$DISCOVER" --connect "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$PP" \
  --federate union --algorithm rq --round-budget 24 \
  --out "$WORK/fed.csv" --federation-json "$WORK/fed.json" \
  >"$WORK/fed.txt" 2>"$WORK/fed.err" \
  || fail "federated discovery failed: $(cat "$WORK/fed.err")"
grep -q "coverage: PARTIAL" "$WORK/fed.txt" \
  && fail "healthy federation reported partial coverage"

# Exactness at ranking-value granularity (first 5 bluenile columns are
# the ranked ones; representatives may differ in the filtering Shape).
rank_proj() {
  tail -n +2 "$1" | cut -d, -f1-5 | sort -u
}
rank_proj "$WORK/truth.csv" >"$WORK/truth.proj"
rank_proj "$WORK/fed.csv" >"$WORK/fed.proj"
diff -q "$WORK/truth.proj" "$WORK/fed.proj" >/dev/null \
  || fail "federated union skyline differs from merged ground truth"
GROUPS=$(wc -l <"$WORK/truth.proj")
echo "union   : $GROUPS skyline groups, identical to merged ground truth"

# Savings: strictly fewer paid queries than the sequential runs, with a
# non-zero pruned count.
PAID=$(sed -n 's/^queries : \([0-9][0-9]*\) paid.*/\1/p' "$WORK/fed.txt")
PRUNED=$(sed -n 's/^queries : [0-9]* paid, \([0-9][0-9]*\) answered.*/\1/p' \
  "$WORK/fed.txt")
[ -n "$PAID" ] && [ -n "$PRUNED" ] \
  || fail "could not parse federation summary: $(cat "$WORK/fed.txt")"
[ "$PAID" -lt "$SEQ" ] \
  || fail "federation paid $PAID queries, sequential only $SEQ"
[ "$PRUNED" -gt 0 ] || fail "no queries pruned by the shared index"
echo "queries : federated $PAID vs sequential $SEQ ($PRUNED pruned)"

# The bench JSON must pass the federation perf gate.
python3 "$COMPARE" "$WORK/fed.json" \
  || fail "compare_bench.py rejected the federation JSON"

# --- Graceful degradation: kill one backend mid-run. ------------------
# The victim gets a catalog an order of magnitude bigger than the
# survivors, so its traversal is guaranteed to still be in flight when
# the kill lands even on a fast unloaded machine; the kill itself comes
# early, right after the connections are up. Landing before the first
# victim query is fine too — the next query fails and the backend is
# dropped the same way.
start_serve victim 20000 4
PV=$PORT
"$DISCOVER" --connect "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$PV" \
  --federate union --algorithm rq --round-budget 24 \
  >"$WORK/kill.txt" 2>"$WORK/kill.err" &
DISC_PID=$!
sleep 0.2
kill -KILL "$victim_PID" 2>/dev/null
wait "$DISC_PID"
code=$?
[ "$code" -eq 0 ] \
  || fail "federation exited $code after backend kill: $(cat "$WORK/kill.err")"
grep -q "coverage: PARTIAL" "$WORK/kill.txt" \
  || fail "no partial-coverage flag after backend kill"
grep -q "FAILED" "$WORK/kill.err" \
  || fail "no failed-backend report on stderr after kill"
# The survivors must have finished their full traversals.
n_complete=$(grep -c "complete$" "$WORK/kill.err")
[ "$n_complete" -eq 2 ] \
  || fail "expected 2 surviving complete backends, saw $n_complete"
echo "degrade : backend kill tolerated, survivors complete, flagged PARTIAL"

# --- Chaos, coordinator: kill -KILL at a round barrier, then resume. ---
# Dedicated servers so their served-query totals belong to this job
# alone: the crashed life plus the resumed life must charge the backends
# exactly what one uninterrupted run charges (the uninterrupted run went
# first against the same servers, so the final totals must be exactly
# twice its cost).
start_serve c1 $N 1
C1=$PORT
start_serve c2 $N 2
C2=$PORT
start_serve c3 $N 3
C3=$PORT
ENDPOINTS="127.0.0.1:$C1,127.0.0.1:$C2,127.0.0.1:$C3"

"$DISCOVER" --connect "$ENDPOINTS" --federate union --algorithm rq \
  --round-budget 24 --journal "$WORK/jref" \
  --out "$WORK/ref.csv" --federation-json "$WORK/ref.json" \
  >"$WORK/ref.txt" 2>"$WORK/ref.err" \
  || fail "journaled reference run failed: $(cat "$WORK/ref.err")"
rank_proj "$WORK/ref.csv" >"$WORK/ref.proj"
diff -q "$WORK/truth.proj" "$WORK/ref.proj" >/dev/null \
  || fail "journaled reference skyline differs from ground truth"
REF_PAID=0
for p in $(sed -n 's/^journal : .* \([0-9][0-9]*\) paid.*/\1/p' \
    "$WORK/ref.err"); do
  REF_PAID=$((REF_PAID + p))
done
[ "$REF_PAID" -gt 0 ] || fail "no journal paid counts in reference stderr"

"$DISCOVER" --connect "$ENDPOINTS" --federate union --algorithm rq \
  --round-budget 24 --journal "$WORK/jcrash" \
  --out "$WORK/res.csv" --federation-json "$WORK/res.json" \
  --crash-point federation.checkpoint.pre_state:8 \
  >"$WORK/crash.txt" 2>"$WORK/crash.err"
code=$?
[ "$code" -eq 137 ] \
  || fail "crash point exited $code, want 137 (SIGKILL)"
"$DISCOVER" --connect "$ENDPOINTS" --federate union --algorithm rq \
  --round-budget 24 --journal "$WORK/jcrash" \
  --out "$WORK/res.csv" --federation-json "$WORK/res.json" \
  >"$WORK/res.txt" 2>"$WORK/res.err" \
  || fail "resume after crash failed: $(cat "$WORK/res.err")"
grep -q "resuming federated session at round" "$WORK/res.err" \
  || fail "resumed run did not pick up the journaled round checkpoint"
diff -q "$WORK/ref.csv" "$WORK/res.csv" >/dev/null \
  || fail "resumed skyline CSV not byte-identical to uninterrupted run"
diff -q "$WORK/ref.json" "$WORK/res.json" >/dev/null \
  || fail "resumed federation JSON not byte-identical to uninterrupted run"

# Wire-level replay count: shut the dedicated servers down and total
# what they actually served across all three client lives.
for s in c1 c2 c3; do
  eval "pid=\$${s}_PID"
  kill -TERM "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
done
SERVED=0
for s in c1 c2 c3; do
  q=$(sed -n 's/^served  : \([0-9][0-9]*\) queries.*/\1/p' "$WORK/$s.err")
  [ -n "$q" ] || fail "no served-query count from $s"
  SERVED=$((SERVED + q))
done
[ "$SERVED" -eq $((2 * REF_PAID)) ] \
  || fail "servers saw $SERVED queries; crash+resume must charge exactly \
what the reference did ($REF_PAID), so $((2 * REF_PAID)) total"
echo "chaos   : kill -9 at round barrier resumed byte-identical, \
$REF_PAID charged queries, zero replayed on the wire"

# --- Chaos, backend: deterministic blackout + revive via the proxy. ----
# The proxy goes dark for client-query arrivals [220, 260): the first
# failed query degrades backend 3, the following probes fail into
# backoff, and the probe after the window reintegrates it. Arrivals are
# a query counter, not wall clock, so the schedule is exactly
# reproducible.
"$PROXY" --upstream "127.0.0.1:$P3" --port 0 --seed 7 \
  --blackout-after 220 --blackout-queries 40 \
  >"$WORK/proxy2.out" 2>"$WORK/proxy2.err" &
PROXY2_PID=$!
PIDS="$PIDS $PROXY2_PID"
PB=$(wait_listen "$WORK/proxy2.out" "$PROXY2_PID") \
  || fail "blackout proxy did not come up: $(cat "$WORK/proxy2.err")"

"$DISCOVER" --connect "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$PB" \
  --federate union --algorithm rq --round-budget 24 \
  --probe-attempts 1000 --probe-backoff 1 \
  --out "$WORK/revive.csv" \
  >"$WORK/revive.txt" 2>"$WORK/revive.err" \
  || fail "federation with blackout failed: $(cat "$WORK/revive.err")"
grep -q "coverage: PARTIAL" "$WORK/revive.txt" \
  && fail "revived backend still reported as partial coverage"
grep -Eq "health healthy  recovered [1-9][0-9]*  complete" \
    "$WORK/revive.err" \
  || fail "no recovery in the backend report: $(cat "$WORK/revive.err")"
rank_proj "$WORK/revive.csv" >"$WORK/revive.proj"
diff -q "$WORK/truth.proj" "$WORK/revive.proj" >/dev/null \
  || fail "revived-backend skyline differs from the no-fault ground truth"

# Survivors must have paid exactly their solo traversal cost: an outage
# elsewhere is not allowed to charge a healthy backend twice.
site=0
for port in "$P1" "$P2"; do
  site=$((site + 1))
  pp=$(sed -n \
    "s/^backend : 127.0.0.1:$port  paid \([0-9]*\)  pruned \([0-9]*\).*/\1 \2/p" \
    "$WORK/revive.err")
  [ -n "$pp" ] || fail "no backend report for survivor 127.0.0.1:$port"
  paid=${pp% *}
  pruned=${pp#* }
  eval "solo=\$S$site"
  [ $((paid + pruned)) -eq "$solo" ] \
    || fail "survivor $site paid+pruned $((paid + pruned)), solo cost $solo"
done
echo "revive  : blackout backend reintegrated, coverage FULL, survivors \
charged exactly once"

echo "federation smoke passed"
