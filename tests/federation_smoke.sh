#!/bin/sh
# Federation loopback smoke: three hdsky_serve backends (one behind a
# fault-injecting hdsky_proxy), one federated union discovery.
#
# Demands:
#  * the federated union skyline equals the merged single-site ground
#    truth exactly (at ranking-value granularity — the only granularity
#    a top-k interface can reveal),
#  * the federated run pays strictly fewer backend queries than the
#    three sequential discoveries it replaces, with a non-zero number
#    answered free from the shared dominance index,
#  * scripts/compare_bench.py accepts the run's --federation-json, and
#  * killing one backend mid-run degrades gracefully: the remaining
#    backends finish, the exit code stays 0, and the output is flagged
#    "coverage: PARTIAL".
#
# Usage: federation_smoke.sh <hdsky_serve> <hdsky_discover> <hdsky_proxy>
#                            <compare_bench.py>
set -u

SERVE=$1
DISCOVER=$2
PROXY=$3
COMPARE=$4
WORK=$(mktemp -d "${TMPDIR:-/tmp}/hdsky_fed.XXXXXX") || exit 1
PIDS=""

cleanup() {
  for pid in $PIDS; do
    kill -TERM "$pid" 2>/dev/null
  done
  for pid in $PIDS; do
    wait "$pid" 2>/dev/null
  done
  rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# wait_listen <out-file> <pid>: blocks until the "listening on" line
# appears, then prints the port.
wait_listen() {
  out=$1
  pid=$2
  i=0
  while [ $i -lt 100 ]; do
    if grep -q "listening on" "$out" 2>/dev/null; then
      sed -n 's/^listening on .*:\([0-9][0-9]*\)$/\1/p' "$out"
      return 0
    fi
    kill -0 "$pid" 2>/dev/null || return 1
    i=$((i + 1))
    sleep 0.1
  done
  return 1
}

# start_serve <name> <n> <seed>: bluenile backend on an ephemeral port;
# sets PORT.
start_serve() {
  name=$1
  n=$2
  seed=$3
  "$SERVE" --demo bluenile --n "$n" --k 10 --seed "$seed" --port 0 \
    >"$WORK/$name.out" 2>"$WORK/$name.err" &
  pid=$!
  PIDS="$PIDS $pid"
  eval "${name}_PID=$pid"
  PORT=$(wait_listen "$WORK/$name.out" "$pid") \
    || fail "$name did not come up: $(cat "$WORK/$name.err")"
}

N=2000

start_serve s1 $N 1
P1=$PORT
start_serve s2 $N 2
P2=$PORT
start_serve s3 $N 3
P3=$PORT

# Backend 3 sits behind an adversarial proxy: spurious BUSY bounces and
# small delays, all recoverable by the client's retry machinery.
"$PROXY" --upstream "127.0.0.1:$P3" --port 0 --seed 11 \
  --rate-limit 0.05 --delay 0.02 --delay-ms 5 \
  >"$WORK/proxy.out" 2>"$WORK/proxy.err" &
PROXY_PID=$!
PIDS="$PIDS $PROXY_PID"
PP=$(wait_listen "$WORK/proxy.out" "$PROXY_PID") \
  || fail "proxy did not come up: $(cat "$WORK/proxy.err")"

# --- Ground truth: dump each site's table, merge, discover locally. ----
for s in 1 2 3; do
  "$DISCOVER" --demo bluenile --n $N --seed $s \
    --dump-data "$WORK/site$s.csv" >/dev/null 2>&1 \
    || fail "dump-data failed for seed $s"
done
head -1 "$WORK/site1.csv" >"$WORK/merged.csv"
for s in 1 2 3; do
  tail -n +2 "$WORK/site$s.csv" >>"$WORK/merged.csv"
done
"$DISCOVER" --data "$WORK/merged.csv" --algorithm rq \
  --out "$WORK/truth.csv" >/dev/null 2>&1 \
  || fail "ground-truth discovery over merged CSV failed"

# --- Sequential baseline: three independent remote discoveries. -------
SEQ=0
for ep in "127.0.0.1:$P1" "127.0.0.1:$P2" "127.0.0.1:$PP"; do
  "$DISCOVER" --connect "$ep" --algorithm rq >"$WORK/seq.txt" 2>/dev/null \
    || fail "sequential discovery against $ep failed"
  q=$(sed -n 's/^queries : \([0-9][0-9]*\).*/\1/p' "$WORK/seq.txt")
  [ -n "$q" ] || fail "no query count in sequential output for $ep"
  SEQ=$((SEQ + q))
done

# --- Federated union over all three (one behind the proxy). -----------
"$DISCOVER" --connect "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$PP" \
  --federate union --algorithm rq --round-budget 24 \
  --out "$WORK/fed.csv" --federation-json "$WORK/fed.json" \
  >"$WORK/fed.txt" 2>"$WORK/fed.err" \
  || fail "federated discovery failed: $(cat "$WORK/fed.err")"
grep -q "coverage: PARTIAL" "$WORK/fed.txt" \
  && fail "healthy federation reported partial coverage"

# Exactness at ranking-value granularity (first 5 bluenile columns are
# the ranked ones; representatives may differ in the filtering Shape).
rank_proj() {
  tail -n +2 "$1" | cut -d, -f1-5 | sort -u
}
rank_proj "$WORK/truth.csv" >"$WORK/truth.proj"
rank_proj "$WORK/fed.csv" >"$WORK/fed.proj"
diff -q "$WORK/truth.proj" "$WORK/fed.proj" >/dev/null \
  || fail "federated union skyline differs from merged ground truth"
GROUPS=$(wc -l <"$WORK/truth.proj")
echo "union   : $GROUPS skyline groups, identical to merged ground truth"

# Savings: strictly fewer paid queries than the sequential runs, with a
# non-zero pruned count.
PAID=$(sed -n 's/^queries : \([0-9][0-9]*\) paid.*/\1/p' "$WORK/fed.txt")
PRUNED=$(sed -n 's/^queries : [0-9]* paid, \([0-9][0-9]*\) answered.*/\1/p' \
  "$WORK/fed.txt")
[ -n "$PAID" ] && [ -n "$PRUNED" ] \
  || fail "could not parse federation summary: $(cat "$WORK/fed.txt")"
[ "$PAID" -lt "$SEQ" ] \
  || fail "federation paid $PAID queries, sequential only $SEQ"
[ "$PRUNED" -gt 0 ] || fail "no queries pruned by the shared index"
echo "queries : federated $PAID vs sequential $SEQ ($PRUNED pruned)"

# The bench JSON must pass the federation perf gate.
python3 "$COMPARE" "$WORK/fed.json" \
  || fail "compare_bench.py rejected the federation JSON"

# --- Graceful degradation: kill one backend mid-run. ------------------
# The victim gets a catalog an order of magnitude bigger than the
# survivors, so its traversal is guaranteed to still be in flight when
# the kill lands even on a fast unloaded machine; the kill itself comes
# early, right after the connections are up. Landing before the first
# victim query is fine too — the next query fails and the backend is
# dropped the same way.
start_serve victim 20000 4
PV=$PORT
"$DISCOVER" --connect "127.0.0.1:$P1,127.0.0.1:$P2,127.0.0.1:$PV" \
  --federate union --algorithm rq --round-budget 24 \
  >"$WORK/kill.txt" 2>"$WORK/kill.err" &
DISC_PID=$!
sleep 0.2
kill -KILL "$victim_PID" 2>/dev/null
wait "$DISC_PID"
code=$?
[ "$code" -eq 0 ] \
  || fail "federation exited $code after backend kill: $(cat "$WORK/kill.err")"
grep -q "coverage: PARTIAL" "$WORK/kill.txt" \
  || fail "no partial-coverage flag after backend kill"
grep -q "FAILED" "$WORK/kill.err" \
  || fail "no failed-backend report on stderr after kill"
# The survivors must have finished their full traversals.
n_complete=$(grep -c "complete$" "$WORK/kill.err")
[ "$n_complete" -eq 2 ] \
  || fail "expected 2 surviving complete backends, saw $n_complete"
echo "degrade : backend kill tolerated, survivors complete, flagged PARTIAL"

echo "federation smoke passed"
